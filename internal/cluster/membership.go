package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"fsmonitor/internal/msgq"
	"fsmonitor/internal/telemetry"
)

// Membership defaults.
const (
	// DefaultHeartbeatInterval is how often a member broadcasts a
	// heartbeat on MembershipTopic.
	DefaultHeartbeatInterval = 250 * time.Millisecond
	// defaultFailFactor: a peer is declared dead after this many missed
	// heartbeat intervals.
	defaultFailFactor = 4
	// helloTimeout bounds a join hello to an unreachable ctl inbox.
	helloTimeout = 5 * time.Second
)

// MembershipOptions configures one member's (or observer's) view of the
// cluster.
type MembershipOptions struct {
	// Self describes this member. ID is required (ValidID); Endpoint and
	// Ctl must be the already-bound addresses of Pub and the ctl inbox.
	// Observers leave Endpoint empty.
	Self MemberInfo
	// Observer makes this a receive-only participant: it sends join
	// hellos and tracks the member set, but broadcasts no heartbeats and
	// is excluded from views (and so owns no partitions). Collectors and
	// consumers use an observer to resolve partition owners.
	Observer bool
	// Pub is the member's bound publisher, shared with the event path;
	// membership broadcasts ride on it. Required unless Observer.
	Pub *msgq.Pub
	// Join lists ctl inboxes of known members to announce ourselves to.
	// The transitive gossip in heartbeats completes the mesh from any
	// single live seed.
	Join []string
	// Parts is the global store-partition count assignments map over.
	Parts int
	// Interval is the heartbeat period (default
	// DefaultHeartbeatInterval); FailAfter is the silence after which a
	// peer is expired (default 4×Interval).
	Interval  time.Duration
	FailAfter time.Duration
	// Advertise, when non-empty, is the externally reachable host
	// substituted into the advertised ctl address — required when the ctl
	// inbox binds a wildcard address (0.0.0.0) that peers cannot dial.
	Advertise string
	// OnChange is called (from the membership goroutine) with each new
	// assignment map. Callbacks must apply maps idempotently and in
	// epoch order — stale epochs may be delivered and must be ignored.
	OnChange func(Assignment)
	// OnPeer is called once per newly discovered peer.
	OnPeer func(MemberInfo)
	// OnRelease is called (from the membership goroutine) when a peer
	// broadcasts that it has closed the given partitions' stores — the
	// handoff fence a new owner waits on before opening them.
	OnRelease func(from string, epoch uint64, parts []int)
	// Federation, when non-nil, receives the telemetry snapshots peers
	// publish on TelemetryTopic (and our own, fed locally — a pub is not
	// self-subscribed). A graceful leave removes the member from the view;
	// silent death does not, so the federation's age-based dead-member
	// detection stays visible.
	Federation *telemetry.Federation
	// TelemetrySnapshot, when non-nil on a non-observer, builds this
	// member's published telemetry frame (a JSON-encoded NodeSnapshot);
	// beat broadcasts it on TelemetryTopic at the heartbeat cadence.
	TelemetrySnapshot func() []byte
	// OnIncident is called (from the membership goroutine) when a peer
	// declares an incident on TelemetryTopic — the cluster-coordinated
	// capture hook: the receiver snapshots its own diagnostic bundle
	// stamped with the shared incident ID. Callbacks must dedup by ID
	// (the declarer may be heard through several in-process memberships).
	OnIncident func(id, from, reason string)
	// Logger receives component-tagged structured logs; nil discards.
	Logger *slog.Logger
}

// peerState tracks one remote member.
type peerState struct {
	info     MemberInfo
	lastSeen time.Time
	epoch    uint64
}

// ctrlMsg is the JSON control frame for both the heartbeat topic and the
// ctl hello inbox. Heartbeats gossip the sender's live peer list, which
// is what completes the mesh: a node that learns an unknown member from
// gossip connects to its endpoint and hellos its ctl so the link becomes
// mutual.
type ctrlMsg struct {
	Kind  string       `json:"k"` // "hello", "hb", "leave", "release"
	Epoch uint64       `json:"e,omitempty"`
	From  MemberInfo   `json:"from"`
	Peers []MemberInfo `json:"peers,omitempty"`
	// Parts carries a release broadcast's closed partitions.
	Parts []int `json:"parts,omitempty"`
}

// incidentFrame is the incident-declaration control frame broadcast on
// TelemetryTopic: the tripping member announces an incident ID so every
// member captures a diagnostic bundle over the same window and stamps
// the shared ID into it. The "k" discriminator separates it from the
// NodeSnapshot frames riding the same topic — a federation fed one by
// mistake would decode an empty Node and drop it, so coexistence is
// safe in both directions.
type incidentFrame struct {
	Kind   string `json:"k"` // "incident"
	ID     string `json:"id"`
	From   string `json:"from"`
	Reason string `json:"reason,omitempty"`
}

// decodeIncidentFrame parses a TelemetryTopic payload as an incident
// declaration; ok is false for any other frame shape.
func decodeIncidentFrame(payload []byte) (incidentFrame, bool) {
	var f incidentFrame
	if err := json.Unmarshal(payload, &f); err != nil {
		return f, false
	}
	return f, f.Kind == "incident" && f.ID != ""
}

// pendingRelease is one release broadcast rebroadcast with heartbeats
// until it expires: the first publish races the new owner's subscription
// to our pub, so a lost frame must heal before the FailAfter fallback.
type pendingRelease struct {
	epoch uint64
	parts []int
	until time.Time
}

// pendingIncident is one incident declaration rebroadcast with
// heartbeats until it expires, for the same reason releases are: the
// first publish races still-connecting peer subscriptions, and a member
// that misses the frame would capture nothing for the shared window.
// Receivers dedup by incident ID, so repeats cost nothing.
type pendingIncident struct {
	payload []byte
	until   time.Time
}

// Membership maintains the live member set and the derived assignment
// map. The protocol is deliberately consensus-free: views converge
// because heartbeats gossip the full peer list, and assignments converge
// because Assign is a pure function of the view. Epochs give handoff an
// order, not agreement.
type Membership struct {
	opts MembershipOptions

	sub *msgq.Sub  // membership broadcasts from every connected peer pub
	ctl *msgq.Pull // join hellos

	mu       sync.Mutex
	peers    map[string]*peerState
	dead     map[string]time.Time // tombstones: recently expired/left members
	helloed  map[string]time.Time // ctl addr -> last hello sent
	epoch    uint64
	maxSeen  uint64
	assign   Assignment
	viewKey  string        // member IDs of the last computed view
	viewCh   chan struct{} // closed and replaced on every peer add/remove
	conflict *MemberInfo   // another live participant claiming our ID
	relOut   []pendingRelease
	incOut   []pendingIncident
	started  bool
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewMembership creates an unstarted membership participant. The ctl
// inbox is bound here (at Self.Ctl); Start begins the protocol.
func NewMembership(opts MembershipOptions) (*Membership, error) {
	if !ValidID(opts.Self.ID) {
		return nil, fmt.Errorf("cluster: invalid member ID %q", opts.Self.ID)
	}
	if opts.Parts < 1 {
		return nil, errors.New("cluster: MembershipOptions.Parts must be >= 1")
	}
	if !opts.Observer && (opts.Pub == nil || opts.Self.Endpoint == "") {
		return nil, errors.New("cluster: members need a bound Pub and Self.Endpoint")
	}
	if opts.Self.Ctl == "" {
		return nil, errors.New("cluster: MembershipOptions.Self.Ctl is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultHeartbeatInterval
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = defaultFailFactor * opts.Interval
	}
	opts.Logger = telemetry.ComponentLogger(opts.Logger, "cluster."+opts.Self.ID)
	ctl := msgq.NewPull(0)
	if err := ctl.Bind(opts.Self.Ctl); err != nil {
		return nil, err
	}
	// Resolve tcp://:0 binds to the real port, then substitute the
	// advertised host: a wildcard bind (0.0.0.0) is reachable but not
	// dialable, so peers must be told the external address.
	opts.Self.Ctl = AdvertiseEndpoint(ctl.Addr(), opts.Advertise)
	m := &Membership{
		opts:    opts,
		ctl:     ctl,
		sub:     msgq.NewSub(),
		peers:   make(map[string]*peerState),
		dead:    make(map[string]time.Time),
		helloed: make(map[string]time.Time),
		viewCh:  make(chan struct{}),
		stopped: make(chan struct{}),
	}
	m.sub.Subscribe(MembershipTopic)
	if opts.Federation != nil || opts.OnIncident != nil {
		m.sub.Subscribe(TelemetryTopic)
	}
	m.recompute() // initial single-member (or empty, for observers) view
	return m, nil
}

// Self returns this participant's info (with resolved addresses).
func (m *Membership) Self() MemberInfo { return m.opts.Self }

// Start begins heartbeating and announces to the Join seeds.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	for _, ctl := range m.opts.Join {
		m.hello(ctl)
	}
	m.wg.Add(3)
	go m.ctlLoop()
	go m.subLoop()
	go m.tickLoop()
}

// hello announces ourselves to a peer's ctl inbox (bounded by
// helloTimeout; an unreachable inbox is abandoned, and gossip retries
// later). Caller must not hold m.mu... it may, actually: the send happens
// on a fresh goroutine.
func (m *Membership) hello(ctlAddr string) {
	if ctlAddr == "" || ctlAddr == m.opts.Self.Ctl {
		return
	}
	payload, err := json.Marshal(ctrlMsg{Kind: "hello", From: m.opts.Self, Epoch: m.epochNow()})
	if err != nil {
		return
	}
	push, err := msgq.NewPush(ctlAddr)
	if err != nil {
		m.opts.Logger.Warn("bad ctl endpoint", "ctl", ctlAddr, "err", err)
		return
	}
	go func() {
		t := time.AfterFunc(helloTimeout, push.Close)
		defer t.Stop()
		defer push.Close()
		_ = push.Send(msgq.Message{Topic: "cluster.hello", Payload: payload})
	}()
}

func (m *Membership) epochNow() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// ctlLoop serves the join inbox: a hello makes the sender a known peer
// (connecting to its pub) and is answered with a hello back so the
// sender learns our pub too — the two-way handshake PUB/SUB alone cannot
// bootstrap.
func (m *Membership) ctlLoop() {
	defer m.wg.Done()
	for msg := range m.ctl.C() {
		var c ctrlMsg
		if err := json.Unmarshal(msg.Payload, &c); err != nil || c.Kind != "hello" {
			continue
		}
		if c.From.Endpoint == "" {
			// Observer hello: it has no pub to track, but it needs our
			// info to connect — answer and move on.
			m.hello(c.From.Ctl)
			continue
		}
		m.observe(c.From, c.Epoch, true)
		if c.From.ID == m.opts.Self.ID && c.From.Ctl != "" && c.From.Ctl != m.opts.Self.Ctl {
			// A hello claiming our own ID from another address: observe
			// recorded the conflict on our side; answer it (gated like any
			// hello) so the sender hears our claim and can abort too.
			m.mu.Lock()
			last, ok := m.helloed[c.From.Ctl]
			gate := !ok || time.Since(last) >= m.opts.FailAfter
			if gate {
				m.helloed[c.From.Ctl] = time.Now()
			}
			m.mu.Unlock()
			if gate {
				m.hello(c.From.Ctl)
			}
		}
	}
}

// subLoop consumes membership broadcasts from every peer pub we are
// connected to.
func (m *Membership) subLoop() {
	defer m.wg.Done()
	for msg := range m.sub.C() {
		if msg.Topic == TelemetryTopic {
			// Two frame shapes share the topic: incident declarations
			// (discriminated by the "k" key, which NodeSnapshot frames
			// lack) and federated telemetry snapshots.
			if f, ok := decodeIncidentFrame(msg.Payload); ok {
				if m.opts.OnIncident != nil {
					m.opts.OnIncident(f.ID, f.From, f.Reason)
				}
				continue
			}
			m.opts.Federation.UpdateJSON(msg.Payload)
			continue
		}
		var c ctrlMsg
		if err := json.Unmarshal(msg.Payload, &c); err != nil {
			continue
		}
		switch c.Kind {
		case "hb":
			// The sender itself is firsthand contact; only the gossiped
			// peer list is secondhand.
			m.observe(c.From, c.Epoch, true)
			for _, p := range c.Peers {
				m.observe(p, c.Epoch, false)
			}
		case "leave":
			m.drop(c.From.ID, "leave")
		case "release":
			// A release is also a liveness signal from its sender.
			m.observe(c.From, c.Epoch, true)
			if m.opts.OnRelease != nil && len(c.Parts) > 0 {
				m.opts.OnRelease(c.From.ID, c.Epoch, c.Parts)
			}
		}
	}
}

// observe folds a member sighting into the peer table. Direct sightings
// (a heartbeat from the member itself, or its hello) refresh liveness;
// gossiped ones only introduce unknown members — a gossiper's stale
// entry must not keep a dead peer alive, so only firsthand contact
// resets the expiry clock. replyHello answers a ctl hello so the link
// becomes mutual.
func (m *Membership) observe(info MemberInfo, epoch uint64, direct bool) {
	if info.ID == m.opts.Self.ID {
		// Traffic claiming our own ID from different addresses means two
		// live participants share one ID — routed topics and the
		// assignment map would interleave them. Record it so a joining
		// deployment can abort instead of corrupting sequence lanes.
		if (info.Endpoint != "" && info.Endpoint != m.opts.Self.Endpoint) ||
			(info.Ctl != "" && info.Ctl != m.opts.Self.Ctl) {
			m.mu.Lock()
			first := m.conflict == nil
			c := info
			m.conflict = &c
			m.mu.Unlock()
			if first {
				m.opts.Logger.Error("member ID conflict: another live participant claims this ID",
					"id", info.ID, "their_endpoint", info.Endpoint, "their_ctl", info.Ctl)
			}
		}
		return
	}
	if !ValidID(info.ID) || info.Endpoint == "" {
		return
	}
	m.mu.Lock()
	if epoch > m.maxSeen {
		m.maxSeen = epoch
	}
	if died, entombed := m.dead[info.ID]; entombed {
		if direct {
			// The member itself is talking again — it's back.
			delete(m.dead, info.ID)
		} else if time.Since(died) < m.opts.FailAfter {
			// Gossip listing a member we just expired is almost always
			// the gossiper's stale view of the same death. Without this
			// tombstone two surviving members resurrect a dead peer off
			// each other's heartbeats forever.
			m.mu.Unlock()
			return
		} else {
			delete(m.dead, info.ID)
		}
	}
	p, known := m.peers[info.ID]
	if known {
		p.info = info
		if direct {
			p.lastSeen = time.Now()
		}
		if epoch > p.epoch {
			p.epoch = epoch
		}
		m.mu.Unlock()
		return
	}
	sendHello := false
	if last, ok := m.helloed[info.Ctl]; !ok || time.Since(last) >= m.opts.FailAfter {
		sendHello = true
		m.helloed[info.Ctl] = time.Now()
	}
	m.mu.Unlock()
	// Hear the new peer's broadcasts BEFORE it becomes countable in the
	// view: a WaitMembers return implies the links to every counted peer
	// exist, so a broadcast sent right after (e.g. an immediate leave)
	// cannot be lost to a still-connecting subscription.
	_ = m.sub.Connect(info.Endpoint)
	m.mu.Lock()
	if _, raced := m.peers[info.ID]; raced {
		// A concurrent observe (ctl and sub loops race) registered it
		// while we were connecting; Connect is idempotent, nothing to do.
		m.mu.Unlock()
		return
	}
	m.peers[info.ID] = &peerState{info: info, lastSeen: time.Now(), epoch: epoch}
	m.signalViewLocked()
	m.mu.Unlock()
	// Hello it so it hears ours (the helloed map gates repeats —
	// receivers are idempotent anyway).
	if sendHello {
		m.hello(info.Ctl)
	}
	if m.opts.OnPeer != nil {
		m.opts.OnPeer(info)
	}
	m.changed()
}

// drop removes a peer (leaving a tombstone against gossip resurrection)
// and recomputes the view.
func (m *Membership) drop(id, why string) {
	m.mu.Lock()
	_, known := m.peers[id]
	delete(m.peers, id)
	if known {
		m.dead[id] = time.Now()
		m.signalViewLocked()
	}
	for tid, t := range m.dead {
		if time.Since(t) > 10*m.opts.FailAfter {
			delete(m.dead, tid)
		}
	}
	m.mu.Unlock()
	if known {
		if why == "leave" {
			// Only a graceful leave forgets the member's telemetry; a
			// silent death must keep aging in the federation until the
			// rollup reports it dead.
			m.opts.Federation.Remove(id)
		}
		m.opts.Logger.Info("member removed", "peer", id, "reason", why)
		m.changed()
	}
}

// tickLoop broadcasts heartbeats and expires silent peers.
func (m *Membership) tickLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopped:
			return
		case <-t.C:
		}
		m.beat()
		var expired []string
		m.mu.Lock()
		for id, p := range m.peers {
			if time.Since(p.lastSeen) > m.opts.FailAfter {
				expired = append(expired, id)
			}
		}
		m.mu.Unlock()
		for _, id := range expired {
			m.drop(id, "heartbeat lapsed")
		}
	}
}

// beat broadcasts one heartbeat carrying the gossip peer list, plus any
// outstanding release broadcasts (rebroadcast until they expire — the
// first release publish can race the new owner's subscription to this
// pub, and a lost frame would otherwise cost the full FailAfter fence).
func (m *Membership) beat() {
	if m.opts.Observer {
		return
	}
	m.mu.Lock()
	c := ctrlMsg{Kind: "hb", From: m.opts.Self, Epoch: m.epoch}
	for _, p := range m.peers {
		c.Peers = append(c.Peers, p.info)
	}
	var rel []pendingRelease
	if len(m.relOut) > 0 {
		kept := m.relOut[:0]
		for _, r := range m.relOut {
			if time.Now().Before(r.until) {
				kept = append(kept, r)
			}
		}
		m.relOut = kept
		rel = append(rel, kept...)
	}
	var inc []pendingIncident
	if len(m.incOut) > 0 {
		kept := m.incOut[:0]
		for _, i := range m.incOut {
			if time.Now().Before(i.until) {
				kept = append(kept, i)
			}
		}
		m.incOut = kept
		inc = append(inc, kept...)
	}
	m.mu.Unlock()
	if payload, err := json.Marshal(c); err == nil {
		m.opts.Pub.Publish(MembershipTopic, payload)
	}
	for _, r := range rel {
		m.publishRelease(r.epoch, r.parts)
	}
	for _, i := range inc {
		m.opts.Pub.Publish(TelemetryTopic, i.payload)
	}
	if m.opts.TelemetrySnapshot != nil {
		if frame := m.opts.TelemetrySnapshot(); len(frame) > 0 {
			m.opts.Pub.Publish(TelemetryTopic, frame)
			// A pub is not self-subscribed, so our own snapshot has to be
			// folded into the local federation directly.
			m.opts.Federation.UpdateJSON(frame)
		}
	}
}

// BroadcastIncident declares an incident to the cluster: the frame rides
// TelemetryTopic so every member (and observer router) already
// subscribed for federated telemetry hears it and captures its own
// bundle under the shared ID. Observers and pub-less participants cannot
// declare. Safe on a nil receiver.
func (m *Membership) BroadcastIncident(id, reason string) {
	if m == nil || m.opts.Observer || m.opts.Pub == nil || id == "" {
		return
	}
	payload, err := json.Marshal(incidentFrame{Kind: "incident", ID: id, From: m.opts.Self.ID, Reason: reason})
	if err != nil {
		return
	}
	// Rebroadcast with heartbeats for one FailAfter window (the
	// pendingRelease pattern): the first publish can race a peer's
	// still-connecting subscription, and receivers dedup by ID anyway.
	m.mu.Lock()
	m.incOut = append(m.incOut, pendingIncident{payload: payload, until: time.Now().Add(m.opts.FailAfter)})
	m.mu.Unlock()
	m.opts.Pub.Publish(TelemetryTopic, payload)
}

// publishRelease broadcasts one release frame.
func (m *Membership) publishRelease(epoch uint64, parts []int) {
	payload, err := json.Marshal(ctrlMsg{Kind: "release", Epoch: epoch, From: m.opts.Self, Parts: parts})
	if err != nil {
		return
	}
	m.opts.Pub.Publish(MembershipTopic, payload)
}

// BroadcastRelease announces that this member has closed the given
// partitions' stores under the given assignment epoch — the handoff
// fence the new owners wait on. The frame is rebroadcast with each
// heartbeat for one FailAfter window so a racing subscription cannot
// lose it.
func (m *Membership) BroadcastRelease(epoch uint64, parts []int) {
	if m.opts.Observer || m.opts.Pub == nil || len(parts) == 0 {
		return
	}
	m.mu.Lock()
	m.relOut = append(m.relOut, pendingRelease{epoch: epoch, parts: parts, until: time.Now().Add(m.opts.FailAfter)})
	m.mu.Unlock()
	m.publishRelease(epoch, parts)
}

// changed recomputes the view and, when it differs from the last one,
// bumps the epoch past everything seen and emits the new assignment.
func (m *Membership) changed() {
	if a, ok := m.recompute(); ok && m.opts.OnChange != nil {
		m.opts.OnChange(a)
	}
}

func (m *Membership) recompute() (Assignment, bool) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.peers)+1)
	if !m.opts.Observer {
		ids = append(ids, m.opts.Self.ID)
	}
	for id := range m.peers {
		ids = append(ids, id)
	}
	a := Assign(0, m.opts.Parts, ids) // sorts + dedups ids internally
	key := fmt.Sprint(assignMembers(a))
	if m.viewKey == key && m.assign.Owner != nil {
		m.mu.Unlock()
		return Assignment{}, false
	}
	if m.maxSeen > m.epoch {
		m.epoch = m.maxSeen
	}
	m.epoch++
	if m.epoch > m.maxSeen {
		m.maxSeen = m.epoch
	}
	a.Epoch = m.epoch
	m.assign = a
	m.viewKey = key
	m.mu.Unlock()
	m.opts.Logger.Info("view changed", "epoch", a.Epoch, "members", key)
	return a, true
}

// assignMembers lists the distinct owners of an assignment (sorted —
// Assign iterates sorted IDs).
func assignMembers(a Assignment) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range a.Owner {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Assignment returns the current assignment map.
func (m *Membership) Assignment() Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.assign
}

// Epoch returns the current assignment epoch.
func (m *Membership) Epoch() uint64 { return m.epochNow() }

// Members returns the current live member count (including self for
// members).
func (m *Membership) Members() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.peers)
	if !m.opts.Observer {
		n++
	}
	return n
}

// Peers returns a snapshot of the known remote members.
func (m *Membership) Peers() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, p.info)
	}
	return out
}

// Owner resolves the owning member of a partition. ok is false while the
// partition is unassigned or the owner is unknown.
func (m *Membership) Owner(part int) (MemberInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.assign.OwnerOf(part)
	if id == "" {
		return MemberInfo{}, false
	}
	if id == m.opts.Self.ID {
		return m.opts.Self, true
	}
	if p, ok := m.peers[id]; ok {
		return p.info, true
	}
	return MemberInfo{}, false
}

// OwnerTopic resolves the routed inbox topic for a partition: the
// collector-side routing hop. ok is false while no owner is known.
func (m *Membership) OwnerTopic(part int) (string, bool) {
	info, ok := m.Owner(part)
	if !ok {
		return "", false
	}
	return msgq.NodeTopic(info.ID, part), true
}

// Parts returns the partition count assignments map over.
func (m *Membership) Parts() int { return m.opts.Parts }

// HeartbeatAge returns the longest silence across live peers (zero with
// no peers) — the watchdog's lapse signal.
func (m *Membership) HeartbeatAge() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for _, p := range m.peers {
		if age := time.Since(p.lastSeen); age > max {
			max = age
		}
	}
	return max
}

// Alive reports whether id is this member itself or a currently live
// peer.
func (m *Membership) Alive(id string) bool {
	if !m.opts.Observer && id == m.opts.Self.ID {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.peers[id]
	return ok
}

// FailAfter returns the failure detector's expiry window.
func (m *Membership) FailAfter() time.Duration { return m.opts.FailAfter }

// Conflict returns the identity of another live participant observed
// claiming this member's ID, if any — a deployment joining an existing
// cluster must treat it as fatal (two nodes sharing an ID split the same
// routed topics and sequence lanes between them).
func (m *Membership) Conflict() (MemberInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.conflict == nil {
		return MemberInfo{}, false
	}
	return *m.conflict, true
}

// signalViewLocked wakes WaitMembers blockers. Caller holds m.mu.
func (m *Membership) signalViewLocked() {
	close(m.viewCh)
	m.viewCh = make(chan struct{})
}

// WaitMembers blocks until the view holds at least n members. It wakes
// on view changes rather than polling, so convergence waits cost no CPU.
func (m *Membership) WaitMembers(n int, timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		m.mu.Lock()
		cnt := len(m.peers)
		if !m.opts.Observer {
			cnt++
		}
		ch := m.viewCh
		m.mu.Unlock()
		if cnt >= n {
			return nil
		}
		select {
		case <-ch:
		case <-m.stopped:
			return fmt.Errorf("cluster: membership stopped with %d/%d members", cnt, n)
		case <-timer.C:
			return fmt.Errorf("cluster: %d/%d members after %v", cnt, n, timeout)
		}
	}
}

// Close leaves gracefully: a leave broadcast lets peers reassign without
// waiting out the failure detector.
func (m *Membership) Close() {
	if !m.opts.Observer && m.opts.Pub != nil {
		if payload, err := json.Marshal(ctrlMsg{Kind: "leave", From: m.opts.Self, Epoch: m.epochNow()}); err == nil {
			m.opts.Pub.Publish(MembershipTopic, payload)
		}
	}
	m.Kill()
}

// Kill stops the participant without a leave broadcast — the crash path
// (tests use it to exercise the failure detector and handoff).
func (m *Membership) Kill() {
	m.stopOnce.Do(func() {
		close(m.stopped)
		m.ctl.Close()
		m.sub.Close()
		m.wg.Wait()
	})
}
