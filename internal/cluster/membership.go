package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"fsmonitor/internal/msgq"
	"fsmonitor/internal/telemetry"
)

// Membership defaults.
const (
	// DefaultHeartbeatInterval is how often a member broadcasts a
	// heartbeat on MembershipTopic.
	DefaultHeartbeatInterval = 250 * time.Millisecond
	// defaultFailFactor: a peer is declared dead after this many missed
	// heartbeat intervals.
	defaultFailFactor = 4
	// helloTimeout bounds a join hello to an unreachable ctl inbox.
	helloTimeout = 5 * time.Second
)

// MembershipOptions configures one member's (or observer's) view of the
// cluster.
type MembershipOptions struct {
	// Self describes this member. ID is required (ValidID); Endpoint and
	// Ctl must be the already-bound addresses of Pub and the ctl inbox.
	// Observers leave Endpoint empty.
	Self MemberInfo
	// Observer makes this a receive-only participant: it sends join
	// hellos and tracks the member set, but broadcasts no heartbeats and
	// is excluded from views (and so owns no partitions). Collectors and
	// consumers use an observer to resolve partition owners.
	Observer bool
	// Pub is the member's bound publisher, shared with the event path;
	// membership broadcasts ride on it. Required unless Observer.
	Pub *msgq.Pub
	// Join lists ctl inboxes of known members to announce ourselves to.
	// The transitive gossip in heartbeats completes the mesh from any
	// single live seed.
	Join []string
	// Parts is the global store-partition count assignments map over.
	Parts int
	// Interval is the heartbeat period (default
	// DefaultHeartbeatInterval); FailAfter is the silence after which a
	// peer is expired (default 4×Interval).
	Interval  time.Duration
	FailAfter time.Duration
	// OnChange is called (from the membership goroutine) with each new
	// assignment map. Callbacks must apply maps idempotently and in
	// epoch order — stale epochs may be delivered and must be ignored.
	OnChange func(Assignment)
	// OnPeer is called once per newly discovered peer.
	OnPeer func(MemberInfo)
	// Logger receives component-tagged structured logs; nil discards.
	Logger *slog.Logger
}

// peerState tracks one remote member.
type peerState struct {
	info     MemberInfo
	lastSeen time.Time
	epoch    uint64
}

// ctrlMsg is the JSON control frame for both the heartbeat topic and the
// ctl hello inbox. Heartbeats gossip the sender's live peer list, which
// is what completes the mesh: a node that learns an unknown member from
// gossip connects to its endpoint and hellos its ctl so the link becomes
// mutual.
type ctrlMsg struct {
	Kind  string       `json:"k"` // "hello", "hb", "leave"
	Epoch uint64       `json:"e,omitempty"`
	From  MemberInfo   `json:"from"`
	Peers []MemberInfo `json:"peers,omitempty"`
}

// Membership maintains the live member set and the derived assignment
// map. The protocol is deliberately consensus-free: views converge
// because heartbeats gossip the full peer list, and assignments converge
// because Assign is a pure function of the view. Epochs give handoff an
// order, not agreement.
type Membership struct {
	opts MembershipOptions

	sub *msgq.Sub  // membership broadcasts from every connected peer pub
	ctl *msgq.Pull // join hellos

	mu       sync.Mutex
	peers    map[string]*peerState
	dead     map[string]time.Time // tombstones: recently expired/left members
	helloed  map[string]time.Time // ctl addr -> last hello sent
	epoch    uint64
	maxSeen  uint64
	assign   Assignment
	viewKey  string // member IDs of the last computed view
	started  bool
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewMembership creates an unstarted membership participant. The ctl
// inbox is bound here (at Self.Ctl); Start begins the protocol.
func NewMembership(opts MembershipOptions) (*Membership, error) {
	if !ValidID(opts.Self.ID) {
		return nil, fmt.Errorf("cluster: invalid member ID %q", opts.Self.ID)
	}
	if opts.Parts < 1 {
		return nil, errors.New("cluster: MembershipOptions.Parts must be >= 1")
	}
	if !opts.Observer && (opts.Pub == nil || opts.Self.Endpoint == "") {
		return nil, errors.New("cluster: members need a bound Pub and Self.Endpoint")
	}
	if opts.Self.Ctl == "" {
		return nil, errors.New("cluster: MembershipOptions.Self.Ctl is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultHeartbeatInterval
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = defaultFailFactor * opts.Interval
	}
	opts.Logger = telemetry.ComponentLogger(opts.Logger, "cluster."+opts.Self.ID)
	ctl := msgq.NewPull(0)
	if err := ctl.Bind(opts.Self.Ctl); err != nil {
		return nil, err
	}
	opts.Self.Ctl = ctl.Addr() // resolve tcp://:0 binds to the real port
	m := &Membership{
		opts:    opts,
		ctl:     ctl,
		sub:     msgq.NewSub(),
		peers:   make(map[string]*peerState),
		dead:    make(map[string]time.Time),
		helloed: make(map[string]time.Time),
		stopped: make(chan struct{}),
	}
	m.sub.Subscribe(MembershipTopic)
	m.recompute() // initial single-member (or empty, for observers) view
	return m, nil
}

// Self returns this participant's info (with resolved addresses).
func (m *Membership) Self() MemberInfo { return m.opts.Self }

// Start begins heartbeating and announces to the Join seeds.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	for _, ctl := range m.opts.Join {
		m.hello(ctl)
	}
	m.wg.Add(3)
	go m.ctlLoop()
	go m.subLoop()
	go m.tickLoop()
}

// hello announces ourselves to a peer's ctl inbox (bounded by
// helloTimeout; an unreachable inbox is abandoned, and gossip retries
// later). Caller must not hold m.mu... it may, actually: the send happens
// on a fresh goroutine.
func (m *Membership) hello(ctlAddr string) {
	if ctlAddr == "" || ctlAddr == m.opts.Self.Ctl {
		return
	}
	payload, err := json.Marshal(ctrlMsg{Kind: "hello", From: m.opts.Self, Epoch: m.epochNow()})
	if err != nil {
		return
	}
	push, err := msgq.NewPush(ctlAddr)
	if err != nil {
		m.opts.Logger.Warn("bad ctl endpoint", "ctl", ctlAddr, "err", err)
		return
	}
	go func() {
		t := time.AfterFunc(helloTimeout, push.Close)
		defer t.Stop()
		defer push.Close()
		_ = push.Send(msgq.Message{Topic: "cluster.hello", Payload: payload})
	}()
}

func (m *Membership) epochNow() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// ctlLoop serves the join inbox: a hello makes the sender a known peer
// (connecting to its pub) and is answered with a hello back so the
// sender learns our pub too — the two-way handshake PUB/SUB alone cannot
// bootstrap.
func (m *Membership) ctlLoop() {
	defer m.wg.Done()
	for msg := range m.ctl.C() {
		var c ctrlMsg
		if err := json.Unmarshal(msg.Payload, &c); err != nil || c.Kind != "hello" {
			continue
		}
		if c.From.Endpoint == "" {
			// Observer hello: it has no pub to track, but it needs our
			// info to connect — answer and move on.
			m.hello(c.From.Ctl)
			continue
		}
		m.observe(c.From, c.Epoch, true)
	}
}

// subLoop consumes membership broadcasts from every peer pub we are
// connected to.
func (m *Membership) subLoop() {
	defer m.wg.Done()
	for msg := range m.sub.C() {
		var c ctrlMsg
		if err := json.Unmarshal(msg.Payload, &c); err != nil {
			continue
		}
		switch c.Kind {
		case "hb":
			// The sender itself is firsthand contact; only the gossiped
			// peer list is secondhand.
			m.observe(c.From, c.Epoch, true)
			for _, p := range c.Peers {
				m.observe(p, c.Epoch, false)
			}
		case "leave":
			m.drop(c.From.ID, "leave")
		}
	}
}

// observe folds a member sighting into the peer table. Direct sightings
// (a heartbeat from the member itself, or its hello) refresh liveness;
// gossiped ones only introduce unknown members — a gossiper's stale
// entry must not keep a dead peer alive, so only firsthand contact
// resets the expiry clock. replyHello answers a ctl hello so the link
// becomes mutual.
func (m *Membership) observe(info MemberInfo, epoch uint64, direct bool) {
	if info.ID == m.opts.Self.ID || !ValidID(info.ID) || info.Endpoint == "" {
		return
	}
	m.mu.Lock()
	if epoch > m.maxSeen {
		m.maxSeen = epoch
	}
	if died, entombed := m.dead[info.ID]; entombed {
		if direct {
			// The member itself is talking again — it's back.
			delete(m.dead, info.ID)
		} else if time.Since(died) < m.opts.FailAfter {
			// Gossip listing a member we just expired is almost always
			// the gossiper's stale view of the same death. Without this
			// tombstone two surviving members resurrect a dead peer off
			// each other's heartbeats forever.
			m.mu.Unlock()
			return
		} else {
			delete(m.dead, info.ID)
		}
	}
	p, known := m.peers[info.ID]
	if known {
		p.info = info
		if direct {
			p.lastSeen = time.Now()
		}
		if epoch > p.epoch {
			p.epoch = epoch
		}
		m.mu.Unlock()
		return
	}
	m.peers[info.ID] = &peerState{info: info, lastSeen: time.Now(), epoch: epoch}
	sendHello := false
	if last, ok := m.helloed[info.Ctl]; !ok || time.Since(last) >= m.opts.FailAfter {
		sendHello = true
		m.helloed[info.Ctl] = time.Now()
	}
	m.mu.Unlock()
	// Hear the new peer's broadcasts; hello it so it hears ours (the
	// helloed map gates repeats — receivers are idempotent anyway).
	_ = m.sub.Connect(info.Endpoint)
	if sendHello {
		m.hello(info.Ctl)
	}
	if m.opts.OnPeer != nil {
		m.opts.OnPeer(info)
	}
	m.changed()
}

// drop removes a peer (leaving a tombstone against gossip resurrection)
// and recomputes the view.
func (m *Membership) drop(id, why string) {
	m.mu.Lock()
	_, known := m.peers[id]
	delete(m.peers, id)
	if known {
		m.dead[id] = time.Now()
	}
	for tid, t := range m.dead {
		if time.Since(t) > 10*m.opts.FailAfter {
			delete(m.dead, tid)
		}
	}
	m.mu.Unlock()
	if known {
		m.opts.Logger.Info("member removed", "peer", id, "reason", why)
		m.changed()
	}
}

// tickLoop broadcasts heartbeats and expires silent peers.
func (m *Membership) tickLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopped:
			return
		case <-t.C:
		}
		m.beat()
		var expired []string
		m.mu.Lock()
		for id, p := range m.peers {
			if time.Since(p.lastSeen) > m.opts.FailAfter {
				expired = append(expired, id)
			}
		}
		m.mu.Unlock()
		for _, id := range expired {
			m.drop(id, "heartbeat lapsed")
		}
	}
}

// beat broadcasts one heartbeat carrying the gossip peer list.
func (m *Membership) beat() {
	if m.opts.Observer {
		return
	}
	m.mu.Lock()
	c := ctrlMsg{Kind: "hb", From: m.opts.Self, Epoch: m.epoch}
	for _, p := range m.peers {
		c.Peers = append(c.Peers, p.info)
	}
	m.mu.Unlock()
	payload, err := json.Marshal(c)
	if err != nil {
		return
	}
	m.opts.Pub.Publish(MembershipTopic, payload)
}

// changed recomputes the view and, when it differs from the last one,
// bumps the epoch past everything seen and emits the new assignment.
func (m *Membership) changed() {
	if a, ok := m.recompute(); ok && m.opts.OnChange != nil {
		m.opts.OnChange(a)
	}
}

func (m *Membership) recompute() (Assignment, bool) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.peers)+1)
	if !m.opts.Observer {
		ids = append(ids, m.opts.Self.ID)
	}
	for id := range m.peers {
		ids = append(ids, id)
	}
	a := Assign(0, m.opts.Parts, ids) // sorts + dedups ids internally
	key := fmt.Sprint(assignMembers(a))
	if m.viewKey == key && m.assign.Owner != nil {
		m.mu.Unlock()
		return Assignment{}, false
	}
	if m.maxSeen > m.epoch {
		m.epoch = m.maxSeen
	}
	m.epoch++
	if m.epoch > m.maxSeen {
		m.maxSeen = m.epoch
	}
	a.Epoch = m.epoch
	m.assign = a
	m.viewKey = key
	m.mu.Unlock()
	m.opts.Logger.Info("view changed", "epoch", a.Epoch, "members", key)
	return a, true
}

// assignMembers lists the distinct owners of an assignment (sorted —
// Assign iterates sorted IDs).
func assignMembers(a Assignment) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range a.Owner {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Assignment returns the current assignment map.
func (m *Membership) Assignment() Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.assign
}

// Epoch returns the current assignment epoch.
func (m *Membership) Epoch() uint64 { return m.epochNow() }

// Members returns the current live member count (including self for
// members).
func (m *Membership) Members() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.peers)
	if !m.opts.Observer {
		n++
	}
	return n
}

// Peers returns a snapshot of the known remote members.
func (m *Membership) Peers() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, p.info)
	}
	return out
}

// Owner resolves the owning member of a partition. ok is false while the
// partition is unassigned or the owner is unknown.
func (m *Membership) Owner(part int) (MemberInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.assign.OwnerOf(part)
	if id == "" {
		return MemberInfo{}, false
	}
	if id == m.opts.Self.ID {
		return m.opts.Self, true
	}
	if p, ok := m.peers[id]; ok {
		return p.info, true
	}
	return MemberInfo{}, false
}

// OwnerTopic resolves the routed inbox topic for a partition: the
// collector-side routing hop. ok is false while no owner is known.
func (m *Membership) OwnerTopic(part int) (string, bool) {
	info, ok := m.Owner(part)
	if !ok {
		return "", false
	}
	return msgq.NodeTopic(info.ID, part), true
}

// Parts returns the partition count assignments map over.
func (m *Membership) Parts() int { return m.opts.Parts }

// HeartbeatAge returns the longest silence across live peers (zero with
// no peers) — the watchdog's lapse signal.
func (m *Membership) HeartbeatAge() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for _, p := range m.peers {
		if age := time.Since(p.lastSeen); age > max {
			max = age
		}
	}
	return max
}

// WaitMembers blocks until the view holds at least n members.
func (m *Membership) WaitMembers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.Members() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d/%d members after %v", m.Members(), n, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// Close leaves gracefully: a leave broadcast lets peers reassign without
// waiting out the failure detector.
func (m *Membership) Close() {
	if !m.opts.Observer && m.opts.Pub != nil {
		if payload, err := json.Marshal(ctrlMsg{Kind: "leave", From: m.opts.Self, Epoch: m.epochNow()}); err == nil {
			m.opts.Pub.Publish(MembershipTopic, payload)
		}
	}
	m.Kill()
}

// Kill stops the participant without a leave broadcast — the crash path
// (tests use it to exercise the failure detector and handoff).
func (m *Membership) Kill() {
	m.stopOnce.Do(func() {
		close(m.stopped)
		m.ctl.Close()
		m.sub.Close()
		m.wg.Wait()
	})
}
