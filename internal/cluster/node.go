package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fsmonitor/internal/events"
	"fsmonitor/internal/eventstore"
	"fsmonitor/internal/msgq"
	"fsmonitor/internal/pace"
	"fsmonitor/internal/pipeline"
	"fsmonitor/internal/telemetry"
)

// DefaultRepublishTopic matches the classic aggregator's topic so a
// cluster node's republish stream is a drop-in for scalable.AggTopic.
const DefaultRepublishTopic = "agg.events"

// NodeOptions configures one aggregator node.
type NodeOptions struct {
	// ID names the node (required; ValidID).
	ID string
	// Endpoint is where the node's publisher binds (routed event traffic
	// in via peers' and collectors' subs, membership broadcasts and
	// republished batches out). Default "inproc://cluster-node-<id>".
	Endpoint string
	// Ctl is the join inbox bind (default "<Endpoint>.ctl" for inproc,
	// "tcp://127.0.0.1:0" when Endpoint is tcp).
	Ctl string
	// Advertise, when non-empty, is the externally reachable host
	// substituted into the advertised publisher and ctl addresses —
	// required when Endpoint/Ctl bind wildcard addresses (0.0.0.0) that
	// peers on other machines cannot dial.
	Advertise string
	// Join lists ctl inboxes of existing members.
	Join []string
	// CollectorEndpoints are publisher endpoints of the collectors this
	// node ingests from.
	CollectorEndpoints []string
	// Parts is the global store-partition count (required; identical on
	// every member).
	Parts int
	// Store is the base store configuration for owned partitions. The
	// JournalPath is the engine-wide base — each partition derives its
	// own "<path>.p<i>" segment, so any node can recover any partition's
	// segment after a handoff (shared or replicated storage in a real
	// deployment; one directory in tests).
	Store eventstore.Options
	// RepublishTopic is the base topic sequenced batches go out on
	// (default DefaultRepublishTopic; partitioned deployments append
	// ".p<part>" exactly like the classic aggregator).
	RepublishTopic string
	// Recovery is the advertised recovery-server address, set by the
	// deployment after it wraps the node in a server.
	Recovery string
	// EventOverhead is the accounted aggregation cost per event (default
	// 500ns), spent on the node's ingest throttle: one throttle per node
	// models each node as the paper's serial aggregator, so aggregate
	// cluster throughput scales with node count.
	EventOverhead time.Duration
	// HeartbeatInterval/FailAfter tune the membership failure detector.
	HeartbeatInterval time.Duration
	FailAfter         time.Duration
	// QueueSize is the intake subscription buffer (default
	// pipeline.DefaultAggregatorQueue).
	QueueSize int
	// Context aborts the node when canceled (Close/Kill remain the
	// explicit paths). Nil means Background.
	Context context.Context
	// Telemetry, when non-nil, mirrors the node under
	// "fsmon.cluster.<id>". Nil costs nothing.
	Telemetry *telemetry.Registry
	// Logger receives component-tagged structured logs; nil discards.
	Logger *slog.Logger
}

func (o NodeOptions) withDefaults() NodeOptions {
	if o.Endpoint == "" {
		o.Endpoint = "inproc://cluster-node-" + o.ID
	}
	if o.Ctl == "" {
		if len(o.Endpoint) >= 6 && o.Endpoint[:6] == "tcp://" {
			o.Ctl = "tcp://127.0.0.1:0"
		} else {
			o.Ctl = o.Endpoint + ".ctl"
		}
	}
	if o.RepublishTopic == "" {
		o.RepublishTopic = DefaultRepublishTopic
	}
	if o.EventOverhead <= 0 {
		o.EventOverhead = 500 * time.Nanosecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = pipeline.DefaultAggregatorQueue
	}
	return o
}

// NodeStats is a snapshot of a node's counters.
type NodeStats struct {
	Received        uint64
	Stored          uint64
	Published       uint64
	StraysForwarded uint64
	Handoffs        uint64
	PartitionsOwned int
	Members         int
	Epoch           uint64
}

// Node is one member of the clustered aggregation tier: the PR 3
// aggregator rebuilt as a dynamic-partition owner. Its pipeline is the
// same subscribe → store → republish shape, but the partition of every
// batch is already decided (it rides in the routed topic), ownership of
// partitions changes with the assignment map, and batches that arrive
// for a partition the node no longer owns are forwarded to the current
// owner instead of stored — the zero-loss path during a reassignment
// window.
type Node struct {
	opts NodeOptions
	pub  *msgq.Pub
	sub  *msgq.Sub
	mem  *Membership

	pipe     *pipeline.Pipeline
	pool     *pipeline.Pool[events.Block]
	throttle *pace.Throttle

	smu     sync.Mutex
	stores  map[int]*eventstore.Store
	pending map[int]pendingAcquire // gained partitions fenced on the old owner's release
	relLog  map[int]releaseRec     // releases received (possibly before the map that needs them)
	prev    Assignment             // the previously applied map (previous owners for fencing)
	applied uint64                 // highest assignment epoch applied to the store set
	boot    bool                   // first assignment applied (its acquisitions are not handoffs)

	received  atomic.Uint64
	stored    atomic.Uint64
	published atomic.Uint64
	strays    atomic.Uint64
	handoffs  atomic.Uint64

	// aud is the shared delivery-conservation auditor (nil when telemetry
	// is off); owned partition stores report their appends on it, and the
	// republish stage counts its tier boundary.
	aud *telemetry.Audit

	slog      *slog.Logger
	closeOnce sync.Once
}

// NewNode creates a node: binds its publisher and join inbox and
// prepares (but does not start) membership. Callers set Recovery via
// SetRecovery between NewNode and Start so the advertised address can be
// derived from the node's own endpoints.
func NewNode(opts NodeOptions) (*Node, error) {
	opts = opts.withDefaults()
	if !ValidID(opts.ID) {
		return nil, fmt.Errorf("cluster: invalid node ID %q", opts.ID)
	}
	if opts.Parts < 1 {
		return nil, errors.New("cluster: NodeOptions.Parts must be >= 1")
	}
	pub := msgq.NewPub(msgq.WithBlockOnFull())
	if err := pub.Bind(opts.Endpoint); err != nil {
		return nil, err
	}
	n := &Node{
		opts:     opts,
		pub:      pub,
		sub:      msgq.NewSub(msgq.WithRecvBuffer(opts.QueueSize)),
		pool:     pipeline.NewPool(0, newPoolBlock, (*events.Block).Reset),
		throttle: pace.NewThrottle(),
		stores:   make(map[int]*eventstore.Store),
		pending:  make(map[int]pendingAcquire),
		relLog:   make(map[int]releaseRec),
	}
	n.slog = telemetry.ComponentLogger(opts.Logger, "node."+opts.ID)
	n.sub.Subscribe(msgq.NodeSubscription(opts.ID))
	// The observability plane hangs off the registry: the shared
	// conservation auditor and the federated cluster view (both idempotent
	// attaches — in-process multi-node deployments share one of each).
	// The federation's dead-member window matches the membership failure
	// detector so both flip within the same heartbeat budget.
	fa := opts.FailAfter
	if fa <= 0 {
		iv := opts.HeartbeatInterval
		if iv <= 0 {
			iv = DefaultHeartbeatInterval
		}
		fa = defaultFailFactor * iv
	}
	n.aud = opts.Telemetry.EnableAudit(opts.Parts)
	fed := opts.Telemetry.EnableFederation(fa)
	var snapshot func() []byte
	if fed != nil {
		snapshot = n.telemetryFrame
	}
	mem, err := NewMembership(MembershipOptions{
		Self:      MemberInfo{ID: opts.ID, Endpoint: AdvertiseEndpoint(pub.Addr(), opts.Advertise), Ctl: opts.Ctl},
		Pub:       pub,
		Join:      opts.Join,
		Parts:     opts.Parts,
		Interval:  opts.HeartbeatInterval,
		FailAfter: opts.FailAfter,
		Advertise: opts.Advertise,
		OnChange:          n.applyAssignment,
		OnPeer:            func(p MemberInfo) { _ = n.sub.Connect(p.Endpoint) },
		OnRelease:         n.onRelease,
		Federation:        fed,
		TelemetrySnapshot: snapshot,
		OnIncident:        n.onIncidentFrame,
		Logger:            opts.Logger,
	})
	if err != nil {
		pub.Close()
		return nil, err
	}
	n.mem = mem
	return n, nil
}

// telemetryFrame builds this node's published federation frame: its
// membership state plus its own registry slice (everything under
// "fsmon.cluster.<id>."), JSON-encoded for the cluster.telemetry topic.
func (n *Node) telemetryFrame() []byte {
	s := telemetry.BuildNodeSnapshot(n.opts.Telemetry, n.opts.ID, n.mem.Epoch(),
		n.mem.Assignment().Owned(n.opts.ID), n.mem.HeartbeatAge())
	frame, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	return frame
}

// SetRecovery records the advertised recovery-server address. Must be
// called before Start.
func (n *Node) SetRecovery(addr string) { n.mem.opts.Self.Recovery = addr; n.opts.Recovery = addr }

// Start connects the intake, applies the initial (single-member)
// assignment, starts membership, and builds the pipeline.
func (n *Node) Start() error {
	for _, ep := range n.opts.CollectorEndpoints {
		if err := n.sub.Connect(ep); err != nil {
			return err
		}
	}
	// A founding node applies its initial self-only map immediately; a
	// joiner waits for the first view that includes its seeds — opening
	// every partition store only to release most of them a heartbeat
	// later would overlap ownership with the current owners.
	if len(n.opts.Join) == 0 {
		n.applyAssignment(n.mem.Assignment())
	}
	n.mem.Start()
	n.pipe = pipeline.New(n.opts.Context)
	intake := pipeline.Source(n.pipe, "subscribe", pipeline.DefaultBatchDepth, n.intakeLoop)
	lanes := n.opts.Parts
	stamped := pipeline.ShardN(n.pipe, "store", pipeline.DefaultBatchDepth, lanes, intake,
		func(pb nodeBatch) int { return pb.part }, n.storeLane)
	pipeline.Sink(n.pipe, "republish", stamped, n.republishBatch)
	n.registerTelemetry(n.opts.Telemetry)
	// The flight recorder's cluster hook: incidents this process declares
	// are broadcast through this node's membership. In-process multi-node
	// deployments share one recorder and any member's pub reaches the
	// mesh, so the last-started node winning the hook is harmless.
	if fr := n.opts.Telemetry.Flight(); fr != nil {
		fr.SetBroadcast(n.BroadcastIncident)
	}
	n.slog.Debug("node started", "endpoint", n.pub.Addr(), "ctl", n.mem.Self().Ctl, "parts", n.opts.Parts)
	return nil
}

// onIncidentFrame routes a peer's incident declaration into the
// registry's flight recorder. The recorder is looked up per frame, so
// one armed after the node started still hears the cluster; CaptureRemote
// dedups by incident ID, so N in-process memberships delivering the same
// frame capture once.
func (n *Node) onIncidentFrame(id, from, reason string) {
	n.opts.Telemetry.Flight().CaptureRemote(id, from, reason)
}

// BroadcastIncident declares an incident to the cluster under the given
// ID — the publish half of cluster-coordinated capture (the receive half
// is every member's flight recorder).
func (n *Node) BroadcastIncident(id, reason string) {
	n.mem.BroadcastIncident(id, reason)
}

// newPoolBlock sizes pooled event blocks like the scalable tier does.
func newPoolBlock() *events.Block {
	return events.NewBlock(pipeline.DefaultChangelogBatch, 32<<10)
}

// ID returns the node's member ID.
func (n *Node) ID() string { return n.opts.ID }

// Endpoint returns the node's advertised publisher endpoint (the bound
// address unless NodeOptions.Advertise rewrote the host).
func (n *Node) Endpoint() string { return n.mem.Self().Endpoint }

// CtlEndpoint returns the node's join inbox address — what other nodes
// pass as Join.
func (n *Node) CtlEndpoint() string { return n.mem.Self().Ctl }

// ConnectCollectors attaches additional collector publishers after Start —
// the deployment order is nodes first (collectors route on the cluster
// view, which needs running nodes), then collectors, then this hookup.
func (n *Node) ConnectCollectors(endpoints ...string) error {
	for _, ep := range endpoints {
		if err := n.sub.Connect(ep); err != nil {
			return err
		}
	}
	return nil
}

// Membership exposes the node's membership view (routing tables,
// WaitMembers in tests and deployments).
func (n *Node) Membership() *Membership { return n.mem }

// Parts returns the global partition count.
func (n *Node) Parts() int { return n.opts.Parts }

// OwnerTopic implements the collector Router contract against this
// node's view.
func (n *Node) OwnerTopic(part int) (string, bool) { return n.mem.OwnerTopic(part) }

// pendingAcquire fences a gained partition until its previous owner has
// provably stopped appending: a release broadcast from that owner, its
// death, or a full FailAfter window — whichever comes first — orders the
// old owner's segment close before the new owner's replay, so two live
// nodes never append to the same segment concurrently.
type pendingAcquire struct {
	prevOwner  string    // member whose release unfences the partition
	sinceEpoch uint64    // epoch of the map under which prevOwner owned it
	deadline   time.Time // FailAfter fallback against a lost release
}

// releaseRec is one received release broadcast, kept so a release that
// arrives before the assignment map needing it still unfences.
type releaseRec struct {
	from  string
	epoch uint64
}

// applyAssignment diffs the new map against the owned store set:
// partitions lost are flushed and closed (their journal segments are the
// handoff medium), then announced in a release broadcast; partitions
// gained from a still-live previous owner are fenced until that owner's
// release (or its death, or FailAfter) before being recovered from their
// segments, so the old and new owner never append concurrently. Maps
// apply in epoch order; duplicates and stale epochs are ignored.
func (n *Node) applyAssignment(a Assignment) {
	if a.Owner == nil {
		return
	}
	n.smu.Lock()
	if a.Epoch <= n.applied {
		n.smu.Unlock()
		return
	}
	n.applied = a.Epoch
	prev := n.prev
	if prev.Owner == nil && len(n.opts.Join) > 0 {
		// A joiner's first map: the cluster it joined was running the map
		// over the view without it. Assign is a pure function of the
		// member set, so that previous map — and each gained partition's
		// previous owner — is recomputable locally.
		var ids []string
		for _, p := range n.mem.Peers() {
			ids = append(ids, p.ID)
		}
		prev = Assign(0, n.opts.Parts, ids)
	}
	n.prev = a
	owned := make(map[int]bool, len(a.Owner))
	for _, p := range a.Owned(n.opts.ID) {
		owned[p] = true
	}
	var released []int
	for p, st := range n.stores {
		if owned[p] {
			continue
		}
		if err := st.Close(); err != nil {
			n.slog.Error("closing released partition", "partition", p, "err", err)
		}
		delete(n.stores, p)
		released = append(released, p)
		n.slog.Info("partition released", "partition", p, "epoch", a.Epoch, "owner", a.OwnerOf(p))
	}
	for p := range n.pending {
		if !owned[p] {
			delete(n.pending, p)
		}
	}
	n.checkPendingLocked()
	for p := range owned {
		if n.stores[p] != nil {
			continue
		}
		if _, fenced := n.pending[p]; fenced {
			continue
		}
		prevOwner := prev.OwnerOf(p)
		if rel, ok := n.relLog[p]; ok && rel.from == prevOwner && rel.epoch >= prev.Epoch {
			prevOwner = "" // already released by the old owner
		}
		if prevOwner == "" || prevOwner == n.opts.ID || !n.mem.Alive(prevOwner) {
			n.openPartitionLocked(p, a.Epoch)
			continue
		}
		n.pending[p] = pendingAcquire{
			prevOwner:  prevOwner,
			sinceEpoch: prev.Epoch,
			deadline:   time.Now().Add(n.mem.FailAfter()),
		}
		n.slog.Info("partition acquisition fenced on old owner", "partition", p, "epoch", a.Epoch, "old_owner", prevOwner)
	}
	n.boot = true
	n.smu.Unlock()
	// The broadcast happens after the stores are closed: receivers may
	// open the segments the moment they see it.
	if len(released) > 0 {
		n.mem.BroadcastRelease(a.Epoch, released)
	}
}

// openPartitionLocked recovers a gained partition from its journal
// segment and continues its sequence lane. Caller holds n.smu.
func (n *Node) openPartitionLocked(p int, epoch uint64) {
	st, err := eventstore.OpenPartitionStore(n.opts.Parts, p, n.opts.Store)
	if err != nil {
		n.slog.Error("opening acquired partition", "partition", p, "err", err)
		return
	}
	st.SetAudit(n.aud, p)
	n.stores[p] = st
	delete(n.pending, p)
	delete(n.relLog, p)
	if n.boot {
		n.handoffs.Add(1)
		n.slog.Info("partition acquired", "partition", p, "epoch", epoch, "last_seq", st.LastSeq())
	}
}

// checkPendingLocked promotes fenced acquisitions whose previous owner
// has died or whose FailAfter deadline has passed. Caller holds n.smu;
// callers on the store and ownership paths drive it, so a fence never
// outlives its condition by more than one access.
func (n *Node) checkPendingLocked() {
	if len(n.pending) == 0 {
		return
	}
	for p, pa := range n.pending {
		if !n.mem.Alive(pa.prevOwner) || time.Now().After(pa.deadline) {
			n.openPartitionLocked(p, n.applied)
		}
	}
}

// onRelease consumes a peer's release broadcast: fenced partitions
// waiting on that owner open immediately; others are logged so a release
// arriving before the assignment map that needs it still counts.
func (n *Node) onRelease(from string, epoch uint64, parts []int) {
	n.smu.Lock()
	defer n.smu.Unlock()
	for _, p := range parts {
		if p < 0 || p >= n.opts.Parts {
			continue
		}
		if pa, fenced := n.pending[p]; fenced && pa.prevOwner == from && epoch >= pa.sinceEpoch {
			n.openPartitionLocked(p, epoch)
			continue
		}
		if rel, ok := n.relLog[p]; !ok || epoch >= rel.epoch {
			n.relLog[p] = releaseRec{from: from, epoch: epoch}
		}
	}
}

// nodeBatch is one routed message: partition parsed from the topic, plus
// the wire payload or the shared in-process block.
type nodeBatch struct {
	part    int
	payload []byte
	blk     *events.Block
}

// intakeLoop receives routed batches. The partition rides in the topic,
// so no decode is needed to shard; messages outside the routed namespace
// (malformed or misaddressed) are dropped with a log line.
func (n *Node) intakeLoop(ctx context.Context, emit func(nodeBatch) bool) error {
	for {
		m, ok := n.sub.Recv(ctx)
		if !ok {
			return nil
		}
		id, part, ok := msgq.ParseNodeTopic(m.Topic)
		if !ok || id != n.opts.ID || part >= n.opts.Parts {
			n.slog.Warn("dropping misaddressed batch", "topic", m.Topic)
			continue
		}
		if !emit(nodeBatch{part: part, payload: m.Payload, blk: m.Block}) {
			return nil
		}
	}
}

// store returns the owned store for a partition (nil when not owned).
// Each access also advances pending fenced acquisitions, so the store
// path promotes a fence the moment its deadline or owner-death condition
// holds rather than waiting for the next membership event.
func (n *Node) store(part int) *eventstore.Store {
	n.smu.Lock()
	defer n.smu.Unlock()
	n.checkPendingLocked()
	return n.stores[part]
}

// storeLane persists one routed batch into its partition's store,
// assigning the lane's sequence numbers, or forwards it to the current
// owner when this node does not (or no longer does) own the partition.
// ShardN guarantees one lane per partition, so within-partition order is
// preserved through the store.
func (n *Node) storeLane(ctx context.Context, pb nodeBatch) (repBatch, bool) {
	blk := pb.blk
	if blk == nil {
		blk = n.pool.Get()
		if err := events.DecodeBlockInto(blk, pb.payload); err != nil {
			n.pool.Put(blk)
			n.slog.Warn("dropping undecodable batch", "partition", pb.part, "bytes", len(pb.payload), "err", err)
			return repBatch{}, false
		}
	} else {
		// In-process pointer fast path: the received block is frozen, so
		// sequence assignment works on a clone — columns copied, arena
		// and wire image shared.
		c := n.pool.Get()
		c.CloneFrom(blk)
		blk = c
	}
	cnt := blk.Len()
	if cnt == 0 {
		n.pool.Put(blk)
		return repBatch{}, false
	}
	n.received.Add(uint64(cnt))
	hopStamped := false
	for {
		if st := n.store(pb.part); st != nil {
			n.throttle.Spend(time.Duration(cnt) * n.opts.EventOverhead)
			if _, err := st.AppendBlock(blk); err == nil {
				n.stored.Add(uint64(cnt))
				if tr := blk.Trace(); tr != nil {
					// The span carries the owning node's ID, so a traced
					// event that crossed a handoff or stray-forward renders
					// as one chain with each hop attributed to its node.
					tr.AppendNode(events.TierStore, time.Now().UnixNano(), n.opts.ID)
					blk.MarkTraceDirty()
				}
				return repBatch{part: pb.part, blk: blk, n: cnt}, true
			} else if n.store(pb.part) == st {
				// Still the owner: a real store failure, not a handoff
				// race. Same policy as the classic aggregator — drop the
				// batch, keep the service.
				n.slog.Error("store append failed, dropping batch", "partition", pb.part, "events", cnt, "err", err)
				n.pool.Put(blk)
				return repBatch{}, false
			}
			continue // lost the partition mid-append: re-route
		}
		// Not the owner: forward to whoever is. The routed topic goes out
		// on our own pub — every member's intake is subscribed to its
		// inbox on every peer pub, so the forward is one hop.
		if topic, ok := n.mem.OwnerTopic(pb.part); ok && topic != msgq.NodeTopic(n.opts.ID, pb.part) {
			if tr := blk.Trace(); tr != nil && !hopStamped {
				// Record the forward hop under this node's identity once —
				// the receiving owner adds its own store span next.
				tr.AppendNode(events.TierPartition, time.Now().UnixNano(), n.opts.ID)
				blk.MarkTraceDirty()
				hopStamped = true
			}
			if delivered, shared := n.pub.PublishBlockCtx(ctx, topic, blk); delivered > 0 {
				n.strays.Add(uint64(cnt))
				if !shared {
					n.pool.Put(blk)
				}
				return repBatch{}, false
			}
		}
		// Owner unknown, not yet subscribed, or it is us but the store
		// has not opened yet (assignment in flight): wait and re-check.
		select {
		case <-ctx.Done():
			n.pool.Put(blk)
			return repBatch{}, false
		case <-time.After(time.Millisecond):
		}
	}
}

// repBatch is a sequenced batch ready to republish.
type repBatch struct {
	part int
	blk  *events.Block
	n    int
}

// republishBatch mirrors the classic aggregator's republish stage: the
// partition's own topic when the tier is partitioned, the bare base
// topic when Parts == 1 — byte-identical to the single aggregator.
func (n *Node) republishBatch(ctx context.Context, rb repBatch) {
	topic := n.opts.RepublishTopic
	if n.opts.Parts > 1 {
		topic = msgq.PartitionTopic(n.opts.RepublishTopic, rb.part)
	}
	if tr := rb.blk.Trace(); tr != nil {
		tr.AppendNode(events.TierRepublish, time.Now().UnixNano(), n.opts.ID)
		rb.blk.MarkTraceDirty()
	}
	_, shared := n.pub.PublishBlockCtx(ctx, topic, rb.blk)
	n.published.Add(uint64(rb.n))
	n.aud.Republished(rb.part, rb.n)
	if !shared {
		n.pool.Put(rb.blk)
	}
}

// OwnedPartitions returns the sorted partitions this node currently
// owns. The recovery server sends it alongside query results so the
// fan-out client can verify cluster-wide coverage.
func (n *Node) OwnedPartitions() []int {
	n.smu.Lock()
	defer n.smu.Unlock()
	n.checkPendingLocked()
	out := make([]int, 0, len(n.stores))
	for p := range n.stores {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Snapshot is one atomic capture of the node's owned store set. The
// recovery server derives the coverage frame and the query results from
// the same snapshot, so a partition released between the two cannot be
// claimed as covered while its events are missing — if a captured store
// closes mid-query, Since fails with ErrClosed, the round errors, and
// the fan-out client retries against the new owner.
type Snapshot struct {
	parts  int
	owned  []int
	stores []*eventstore.Store
}

// RecoverySnapshot captures the current owned store set.
func (n *Node) RecoverySnapshot() *Snapshot {
	n.smu.Lock()
	defer n.smu.Unlock()
	n.checkPendingLocked()
	s := &Snapshot{parts: n.opts.Parts}
	for p := range n.stores {
		s.owned = append(s.owned, p)
	}
	sort.Ints(s.owned)
	s.stores = make([]*eventstore.Store, 0, len(s.owned))
	for _, p := range s.owned {
		s.stores = append(s.stores, n.stores[p])
	}
	return s
}

// OwnedPartitions returns the partitions captured in the snapshot.
func (s *Snapshot) OwnedPartitions() []int { return s.owned }

// Partitions returns the global partition count.
func (s *Snapshot) Partitions() int { return s.parts }

// Since queries the captured stores with one cursor for every partition.
func (s *Snapshot) Since(seq uint64, max int) ([]events.Event, error) {
	cursors := make([]uint64, s.parts)
	for i := range cursors {
		cursors[i] = seq
	}
	return s.SinceVector(cursors, max)
}

// SinceVector queries the captured stores past the per-partition
// cursors, merged in global seq order. A store closed since the capture
// returns its error — the caller's retry loop re-snapshots.
func (s *Snapshot) SinceVector(cursors []uint64, max int) ([]events.Event, error) {
	if len(cursors) != s.parts {
		return nil, fmt.Errorf("cluster: cursor vector has %d partitions, snapshot has %d", len(cursors), s.parts)
	}
	lists := make([][]events.Event, 0, len(s.stores))
	for i, st := range s.stores {
		l, err := st.Since(cursors[s.owned[i]], max)
		if err != nil {
			return nil, err
		}
		lists = append(lists, l)
	}
	return eventstore.MergeBySeq(lists, max), nil
}

// Partitions returns the global partition count (recovery contract).
func (n *Node) Partitions() int { return n.opts.Parts }

// Since returns up to max events with Seq > seq from the node's owned
// partitions, merged in global seq order.
func (n *Node) Since(seq uint64, max int) ([]events.Event, error) {
	cursors := make([]uint64, n.opts.Parts)
	for i := range cursors {
		cursors[i] = seq
	}
	return n.SinceVector(cursors, max)
}

// SinceVector returns up to max events past the per-partition cursors,
// from owned partitions only, merged in global seq order.
func (n *Node) SinceVector(cursors []uint64, max int) ([]events.Event, error) {
	if len(cursors) != n.opts.Parts {
		return nil, fmt.Errorf("cluster: cursor vector has %d partitions, node has %d", len(cursors), n.opts.Parts)
	}
	n.smu.Lock()
	type owned struct {
		part int
		st   *eventstore.Store
	}
	stores := make([]owned, 0, len(n.stores))
	for p, st := range n.stores {
		stores = append(stores, owned{p, st})
	}
	n.smu.Unlock()
	lists := make([][]events.Event, 0, len(stores))
	for _, o := range stores {
		l, err := o.st.Since(cursors[o.part], max)
		if err != nil {
			return nil, err
		}
		lists = append(lists, l)
	}
	return eventstore.MergeBySeq(lists, max), nil
}

// LastSeqVector returns the highest stored seq per partition, zero for
// partitions this node does not own.
func (n *Node) LastSeqVector() []uint64 {
	out := make([]uint64, n.opts.Parts)
	n.smu.Lock()
	for p, st := range n.stores {
		out[p] = st.LastSeq()
	}
	n.smu.Unlock()
	return out
}

// AckVector flags, per owned partition i, events up to cursors[i] as
// reported.
func (n *Node) AckVector(cursors []uint64) error {
	if len(cursors) != n.opts.Parts {
		return fmt.Errorf("cluster: cursor vector has %d partitions, node has %d", len(cursors), n.opts.Parts)
	}
	n.smu.Lock()
	defer n.smu.Unlock()
	for p, st := range n.stores {
		if err := st.MarkReported(cursors[p]); err != nil {
			return err
		}
	}
	return nil
}

// Purge removes reported events from every owned partition.
func (n *Node) Purge() (int, error) {
	n.smu.Lock()
	defer n.smu.Unlock()
	total := 0
	for _, st := range n.stores {
		c, err := st.Purge()
		total += c
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.smu.Lock()
	ownedN := len(n.stores)
	n.smu.Unlock()
	return NodeStats{
		Received:        n.received.Load(),
		Stored:          n.stored.Load(),
		Published:       n.published.Load(),
		StraysForwarded: n.strays.Load(),
		Handoffs:        n.handoffs.Load(),
		PartitionsOwned: ownedN,
		Members:         n.mem.Members(),
		Epoch:           n.mem.Epoch(),
	}
}

// registerTelemetry mirrors the node into reg under "fsmon.cluster.<id>"
// — the per-node cluster surface the watchdog and /healthz read.
func (n *Node) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	prefix := "fsmon.cluster." + n.opts.ID
	reg.GaugeFunc(prefix+".members", func() float64 { return float64(n.mem.Members()) })
	reg.GaugeFunc(prefix+".epoch", func() float64 { return float64(n.mem.Epoch()) })
	reg.GaugeFunc(prefix+".partitions_owned", func() float64 {
		n.smu.Lock()
		defer n.smu.Unlock()
		return float64(len(n.stores))
	})
	reg.GaugeFunc(prefix+".handoffs_total", func() float64 { return float64(n.handoffs.Load()) })
	reg.GaugeFunc(prefix+".heartbeat_age_ms", func() float64 {
		return float64(n.mem.HeartbeatAge()) / float64(time.Millisecond)
	})
	reg.GaugeFunc(prefix+".strays_forwarded", func() float64 { return float64(n.strays.Load()) })
	reg.GaugeFunc(prefix+".received", func() float64 { return float64(n.received.Load()) })
	reg.GaugeFunc(prefix+".stored", func() float64 { return float64(n.stored.Load()) })
}

// shutdown is the shared teardown; graceful controls the leave
// broadcast.
func (n *Node) shutdown(graceful bool) {
	n.closeOnce.Do(func() {
		n.sub.Close()
		if n.pipe != nil {
			n.pipe.Drain(pipeline.DefaultDrainGrace)
		}
		n.smu.Lock()
		for p, st := range n.stores {
			if err := st.Close(); err != nil {
				n.slog.Error("closing partition store", "partition", p, "err", err)
			}
			delete(n.stores, p)
		}
		n.smu.Unlock()
		if graceful {
			n.mem.Close()
		} else {
			n.mem.Kill()
		}
		n.pub.Close()
	})
}

// Close stops the node gracefully: the intake drains, owned partitions
// flush and close, and a leave broadcast lets peers take the partitions
// over immediately.
func (n *Node) Close() { n.shutdown(true) }

// Kill stops the node abruptly — no leave broadcast, peers must detect
// the silence. Tests use it to exercise failure-driven handoff; the
// partitions' durability is whatever the journal Sync policy guaranteed
// at the moment of death.
func (n *Node) Kill() { n.shutdown(false) }
