package cluster

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsmonitor/internal/eventstore"
	"fsmonitor/internal/telemetry"
)

// TestClusterHealthzMemberDeathAndRejoin is the acceptance test for the
// observability plane's failure story across a real member death: a
// two-node cluster serves a 200 rollup with both members, a killed node
// flips /cluster/healthz to 503 (dead member, detected by snapshot age)
// within one failure-detector window, the cluster-heartbeat-lapse
// watchdog rule fires on the survivor's peer-silence during the same
// window, and a rejoin under the dead node's ID recovers the rollup
// to 200.
func TestClusterHealthzMemberDeathAndRejoin(t *testing.T) {
	const parts = 4
	const failAfter = 250 * time.Millisecond
	journal := filepath.Join(t.TempDir(), "journal")

	reg := telemetry.NewRegistry()
	sampler := reg.StartSampler(time.Hour, 64) // driven by SampleNow below
	t.Cleanup(sampler.Close)
	health := telemetry.NewHealth(sampler, telemetry.HealthOptions{HeartbeatLapseMS: 50})
	t.Cleanup(health.Close)
	reg.SetHealth(health)

	newNode := func(id string, join ...string) *Node {
		t.Helper()
		n, err := NewNode(NodeOptions{
			ID:                id,
			Endpoint:          fmt.Sprintf("inproc://healthtest-%p-%s-%d", t, id, time.Now().UnixNano()),
			Join:              join,
			Parts:             parts,
			Store:             eventstore.Options{JournalPath: journal, Sync: eventstore.SyncAlways},
			HeartbeatInterval: 20 * time.Millisecond,
			FailAfter:         failAfter,
			Telemetry:         reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			n.Close()
			t.Fatal(err)
		}
		return n
	}
	n0 := newNode("n0")
	defer n0.Close()
	n1 := newNode("n1", n0.CtlEndpoint())
	defer n1.Close()
	for _, n := range []*Node{n0, n1} {
		if err := n.Membership().WaitMembers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/cluster/healthz"

	// waitRollup polls until the endpoint's HTTP verdict matches wantOK and
	// the report passes check, or fails the test. onPoll (optional) runs
	// each iteration — the death phase uses it to watch the watchdog.
	waitRollup := func(what string, wantOK bool, check func(telemetry.ClusterReport) bool, onPoll func()) telemetry.ClusterReport {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if onPoll != nil {
				onPoll()
			}
			rep, ok, err := telemetry.FetchClusterHealth(url)
			if err == nil && ok == wantOK && check(rep) {
				return rep
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: ok=%v err=%v report=%+v", what, ok, err, rep)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	bothAlive := func(rep telemetry.ClusterReport) bool {
		if len(rep.Members) != 2 {
			return false
		}
		for _, m := range rep.Members {
			if m.Dead {
				return false
			}
		}
		return true
	}

	rep := waitRollup("initial 2-member rollup", true, bothAlive, nil)
	for _, m := range rep.Members {
		if m.Node != "n0" && m.Node != "n1" {
			t.Fatalf("unexpected member %q in %+v", m.Node, rep.Members)
		}
	}

	// Kill n1 without a leave: peers must detect the silence. While the
	// rollup converges, drive the sampler so the survivor's growing
	// peer-heartbeat age crosses the lapse threshold in a sample the
	// watchdog evaluates.
	killedAt := time.Now()
	n1.Kill()
	lapseFired := false
	rep = waitRollup("dead member flips rollup to 503", false,
		func(rep telemetry.ClusterReport) bool { return rep.Status == telemetry.StatusStalled },
		func() {
			if lapseFired {
				return
			}
			sampler.SampleNow()
			for _, v := range health.Evaluate().Tiers {
				for _, reason := range v.Reasons {
					if strings.Contains(reason, "heartbeat") {
						lapseFired = true
					}
				}
			}
		})
	if detect := time.Since(killedAt); detect > 4*failAfter {
		t.Errorf("death detected after %v, want within one failure-detector window (%v)", detect, failAfter)
	}
	if !lapseFired {
		t.Error("cluster-heartbeat-lapse rule never fired during the silence window")
	}
	deadSeen := false
	for _, m := range rep.Members {
		if m.Node == "n1" {
			deadSeen = true
			if !m.Dead || m.Status != telemetry.StatusStalled {
				t.Errorf("killed member state: %+v", m)
			}
		}
	}
	if !deadSeen {
		t.Fatalf("killed member missing from rollup: %+v", rep.Members)
	}

	// Rejoin under the same ID: fresh snapshots revive the member and the
	// rollup recovers to 200 — the operator's signal that the cluster is
	// whole again.
	n1b := newNode("n1", n0.CtlEndpoint())
	defer n1b.Close()
	waitRollup("rejoined member recovers rollup", true, bothAlive, nil)
}
