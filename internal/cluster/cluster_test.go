package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"fsmonitor/internal/events"
	"fsmonitor/internal/eventstore"
	"fsmonitor/internal/msgq"
)

func TestAssignBalancedDeterministic(t *testing.T) {
	members := []string{"n3", "n1", "n0", "n2"}
	a := Assign(7, 32, members)
	if a.Epoch != 7 || a.Parts != 32 || len(a.Owner) != 32 {
		t.Fatalf("assignment shape: %+v", a)
	}
	counts := map[string]int{}
	for p, id := range a.Owner {
		if id == "" {
			t.Fatalf("partition %d unassigned", p)
		}
		counts[id]++
	}
	for _, id := range members {
		if counts[id] != 8 {
			t.Fatalf("member %s owns %d partitions, want 8 (counts %v)", id, counts[id], counts)
		}
	}
	b := Assign(7, 32, []string{"n0", "n1", "n2", "n3", "n2"}) // order/dup insensitive
	for p := range a.Owner {
		if a.Owner[p] != b.Owner[p] {
			t.Fatalf("assignment not deterministic at partition %d: %s vs %s", p, a.Owner[p], b.Owner[p])
		}
	}
}

func TestAssignStability(t *testing.T) {
	all := []string{"n0", "n1", "n2", "n3"}
	before := Assign(1, 32, all)
	after := Assign(2, 32, []string{"n0", "n1", "n3"})
	moved := 0
	for p := range after.Owner {
		if before.Owner[p] == "n2" {
			if after.Owner[p] == "n2" {
				t.Fatalf("partition %d still owned by removed member", p)
			}
			continue
		}
		if after.Owner[p] != before.Owner[p] {
			moved++
		}
	}
	// Rendezvous underneath keeps survivor-owned partitions mostly put;
	// the balance cap may shuffle a few, but losing one of four members
	// must not reshuffle the survivors wholesale.
	if moved > 8 {
		t.Fatalf("%d survivor partitions moved on one departure", moved)
	}
}

func TestAssignNoMembers(t *testing.T) {
	a := Assign(1, 4, nil)
	for p, id := range a.Owner {
		if id != "" {
			t.Fatalf("partition %d assigned to %q with no members", p, id)
		}
	}
}

// memberHarness is one raw membership participant for protocol tests.
type memberHarness struct {
	pub *msgq.Pub
	mem *Membership
}

func newMemberHarness(t *testing.T, id string, parts int, join ...string) *memberHarness {
	return newMemberHarnessTimed(t, id, parts, 10*time.Millisecond, 60*time.Millisecond, join...)
}

func newMemberHarnessTimed(t *testing.T, id string, parts int, interval, failAfter time.Duration, join ...string) *memberHarness {
	t.Helper()
	pub := msgq.NewPub()
	ep := fmt.Sprintf("inproc://memtest-%p-%s", t, id)
	if err := pub.Bind(ep); err != nil {
		t.Fatal(err)
	}
	mem, err := NewMembership(MembershipOptions{
		Self:      MemberInfo{ID: id, Endpoint: ep, Ctl: ep + ".ctl"},
		Pub:       pub,
		Join:      join,
		Parts:     parts,
		Interval:  interval,
		FailAfter: failAfter,
	})
	if err != nil {
		pub.Close()
		t.Fatal(err)
	}
	mem.Start()
	return &memberHarness{pub: pub, mem: mem}
}

func (h *memberHarness) kill() {
	h.mem.Kill()
	h.pub.Close()
}

func TestMembershipConvergenceAndFailure(t *testing.T) {
	const parts = 8
	a := newMemberHarness(t, "a", parts)
	defer a.kill()
	b := newMemberHarness(t, "b", parts, a.mem.Self().Ctl)
	defer b.kill()
	// c joins via a only; it must learn b through gossip.
	c := newMemberHarness(t, "c", parts, a.mem.Self().Ctl)
	defer c.kill()
	for _, h := range []*memberHarness{a, b, c} {
		if err := h.mem.WaitMembers(3, 5*time.Second); err != nil {
			t.Fatalf("%s: %v", h.mem.Self().ID, err)
		}
	}
	// Converged views compute identical owner maps.
	deadline := time.Now().Add(5 * time.Second)
	for {
		aa, ba, ca := a.mem.Assignment(), b.mem.Assignment(), c.mem.Assignment()
		if fmt.Sprint(aa.Owner) == fmt.Sprint(ba.Owner) && fmt.Sprint(ba.Owner) == fmt.Sprint(ca.Owner) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assignments did not converge: %v / %v / %v", aa.Owner, ba.Owner, ca.Owner)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill b without a leave; the failure detector must expire it.
	epochBefore := a.mem.Epoch()
	b.kill()
	deadline = time.Now().Add(5 * time.Second)
	for a.mem.Members() != 2 || c.mem.Members() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("members after kill: a=%d c=%d", a.mem.Members(), c.mem.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if a.mem.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance on failure: %d -> %d", epochBefore, a.mem.Epoch())
	}
	// The view updates before the assignment recomputes; poll briefly.
	deadline = time.Now().Add(time.Second)
	for {
		stale := false
		for p := 0; p < parts; p++ {
			if a.mem.Assignment().OwnerOf(p) == "b" {
				stale = true
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("assignment still references dead member")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMembershipGracefulLeave(t *testing.T) {
	a := newMemberHarness(t, "a", 4)
	defer a.kill()
	b := newMemberHarness(t, "b", 4, a.mem.Self().Ctl)
	if err := a.mem.WaitMembers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Leave broadcasts reassign without waiting out FailAfter: generous
	// margin here, but strictly less than the detector's 60ms.
	b.mem.Close()
	deadline := time.Now().Add(50 * time.Millisecond)
	for a.mem.Members() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leave not processed before failure-detector deadline")
		}
		time.Sleep(time.Millisecond)
	}
	b.pub.Close()
}

// startNode builds and starts a Node for handoff tests.
func startNode(t *testing.T, id string, parts int, journal string, collectors []string, join ...string) *Node {
	t.Helper()
	n, err := NewNode(NodeOptions{
		ID:                 id,
		Endpoint:           fmt.Sprintf("inproc://nodetest-%p-%s", t, id),
		Join:               join,
		CollectorEndpoints: collectors,
		Parts:              parts,
		Store:              eventstore.Options{JournalPath: journal, Sync: eventstore.SyncAlways},
		EventOverhead:      time.Nanosecond,
		HeartbeatInterval:  10 * time.Millisecond,
		FailAfter:          60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		n.Close()
		t.Fatal(err)
	}
	return n
}

// TestNodeHandoffContinuity drives routed batches at a two-node cluster,
// kills the owner of a partition, and verifies the survivor recovers the
// partition's journal segment and continues its sequence lane with no
// loss, duplication, or gap.
func TestNodeHandoffContinuity(t *testing.T) {
	const parts = 4
	journal := filepath.Join(t.TempDir(), "journal")
	col := msgq.NewPub(msgq.WithBlockOnFull())
	colEP := fmt.Sprintf("inproc://nodetest-%p-col", t)
	if err := col.Bind(colEP); err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	n0 := startNode(t, "n0", parts, journal, []string{colEP})
	defer n0.Close()
	n1 := startNode(t, "n1", parts, journal, []string{colEP}, n0.CtlEndpoint())
	defer n1.Close()
	for _, n := range []*Node{n0, n1} {
		if err := n.Membership().WaitMembers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitOwnedTotal := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(n0.OwnedPartitions())+len(n1.OwnedPartitions()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("owned partitions: n0=%v n1=%v, want %d total",
					n0.OwnedPartitions(), n1.OwnedPartitions(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitOwnedTotal(parts)

	nodeFor := map[string]*Node{"n0": n0, "n1": n1}
	publish := func(phase string, count int) map[string]bool {
		t.Helper()
		paths := map[string]bool{}
		for i := 0; i < count; i++ {
			path := fmt.Sprintf("/%s/f%03d", phase, i)
			p := eventstore.PartitionForPath(path, parts)
			payload, err := events.MarshalBatch([]events.Event{{Path: path, Op: events.OpCreate, Root: "/mnt", Source: "test"}})
			if err != nil {
				t.Fatal(err)
			}
			// Retry-until-delivered with owner re-resolution: the same
			// loop the routing collector runs.
			deadline := time.Now().Add(5 * time.Second)
			for {
				owner := ""
				for _, n := range []*Node{n0, n1} {
					if len(n.OwnedPartitions()) > 0 {
						owner = n.Membership().Assignment().OwnerOf(p)
						break
					}
				}
				if nd := nodeFor[owner]; nd != nil {
					if delivered := col.PublishCtx(context.Background(), msgq.NodeTopic(owner, p), payload); delivered > 0 {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("could not deliver %s to partition %d owner", path, p)
				}
				time.Sleep(2 * time.Millisecond)
			}
			paths[path] = true
		}
		return paths
	}

	waitStored := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for n0.Stats().Stored+n1.Stats().Stored < want {
			if time.Now().After(deadline) {
				t.Fatalf("stored %d+%d, want %d", n0.Stats().Stored, n1.Stats().Stored, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	phase1 := publish("one", 40)
	waitStored(40)

	// Kill n1 (no leave). n0's failure detector must hand its partitions
	// over by journal replay.
	killed := n1
	nodeFor["n1"] = nil
	killed.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for len(n0.OwnedPartitions()) != parts {
		if time.Now().After(deadline) {
			t.Fatalf("survivor owns %v after kill", n0.OwnedPartitions())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := n0.Stats().Handoffs; h == 0 {
		t.Fatal("survivor recorded no handoffs")
	}

	phase2 := publish("two", 40)
	waitStored(80)

	got, err := n0.Since(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("recovered %d events, want 80", len(got))
	}
	seen := map[string]bool{}
	lastByPart := map[int]uint64{}
	for _, e := range got {
		if seen[e.Path] {
			t.Fatalf("duplicate event %q", e.Path)
		}
		seen[e.Path] = true
		part := int(e.Seq % parts)
		if want := eventstore.PartitionForPath(e.Path, parts); part != want {
			t.Fatalf("event %q seq %d in lane %d, want %d", e.Path, e.Seq, part, want)
		}
		if prev, ok := lastByPart[part]; ok && e.Seq != prev+parts {
			t.Fatalf("lane %d: seq %d after %d (gap or overlap across handoff)", part, e.Seq, prev)
		}
		lastByPart[part] = e.Seq
	}
	for path := range phase1 {
		if !seen[path] {
			t.Fatalf("lost pre-handoff event %q", path)
		}
	}
	for path := range phase2 {
		if !seen[path] {
			t.Fatalf("lost post-handoff event %q", path)
		}
	}
}

// TestMembershipStableUnderHeartbeats: with everyone healthy, the view
// must hold steady across many FailAfter windows — heartbeats alone (not
// just ctl hellos) refresh liveness, so no peer flaps dead/alive and the
// epoch never advances. Regression: heartbeat senders were folded in as
// secondhand sightings, so every peer expired each FailAfter and was
// resurrected by the next gossip round, churning epochs and handoffs.
func TestMembershipStableUnderHeartbeats(t *testing.T) {
	const (
		parts = 4
		// Generous windows so scheduler stalls on a loaded test host can't
		// fake a lapse: with the regression, peers expire every FailAfter
		// regardless of its length, so four windows still expose the churn.
		interval  = 20 * time.Millisecond
		failAfter = 250 * time.Millisecond
	)
	a := newMemberHarnessTimed(t, "a", parts, interval, failAfter)
	defer a.kill()
	b := newMemberHarnessTimed(t, "b", parts, interval, failAfter, a.mem.Self().Ctl)
	defer b.kill()
	for _, h := range []*memberHarness{a, b} {
		if err := h.mem.WaitMembers(2, 5*time.Second); err != nil {
			t.Fatalf("%s: %v", h.mem.Self().ID, err)
		}
	}
	epoch := a.mem.Epoch()
	time.Sleep(4 * failAfter)
	if got := a.mem.Members(); got != 2 {
		t.Fatalf("a sees %d members after quiet period", got)
	}
	if got := b.mem.Members(); got != 2 {
		t.Fatalf("b sees %d members after quiet period", got)
	}
	if got := a.mem.Epoch(); got != epoch {
		t.Fatalf("epoch churned %d -> %d with no membership change", epoch, got)
	}
	if age := a.mem.HeartbeatAge(); age > failAfter {
		t.Fatalf("heartbeat age %v exceeds FailAfter with live peers", age)
	}
}
