package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"fsmonitor/internal/events"
	"fsmonitor/internal/eventstore"
	"fsmonitor/internal/msgq"
)

func TestAssignBalancedDeterministic(t *testing.T) {
	members := []string{"n3", "n1", "n0", "n2"}
	a := Assign(7, 32, members)
	if a.Epoch != 7 || a.Parts != 32 || len(a.Owner) != 32 {
		t.Fatalf("assignment shape: %+v", a)
	}
	counts := map[string]int{}
	for p, id := range a.Owner {
		if id == "" {
			t.Fatalf("partition %d unassigned", p)
		}
		counts[id]++
	}
	for _, id := range members {
		if counts[id] != 8 {
			t.Fatalf("member %s owns %d partitions, want 8 (counts %v)", id, counts[id], counts)
		}
	}
	b := Assign(7, 32, []string{"n0", "n1", "n2", "n3", "n2"}) // order/dup insensitive
	for p := range a.Owner {
		if a.Owner[p] != b.Owner[p] {
			t.Fatalf("assignment not deterministic at partition %d: %s vs %s", p, a.Owner[p], b.Owner[p])
		}
	}
}

func TestAssignStability(t *testing.T) {
	all := []string{"n0", "n1", "n2", "n3"}
	before := Assign(1, 32, all)
	after := Assign(2, 32, []string{"n0", "n1", "n3"})
	moved := 0
	for p := range after.Owner {
		if before.Owner[p] == "n2" {
			if after.Owner[p] == "n2" {
				t.Fatalf("partition %d still owned by removed member", p)
			}
			continue
		}
		if after.Owner[p] != before.Owner[p] {
			moved++
		}
	}
	// Rendezvous underneath keeps survivor-owned partitions mostly put;
	// the balance cap may shuffle a few, but losing one of four members
	// must not reshuffle the survivors wholesale.
	if moved > 8 {
		t.Fatalf("%d survivor partitions moved on one departure", moved)
	}
}

func TestAssignNoMembers(t *testing.T) {
	a := Assign(1, 4, nil)
	for p, id := range a.Owner {
		if id != "" {
			t.Fatalf("partition %d assigned to %q with no members", p, id)
		}
	}
}

// memberHarness is one raw membership participant for protocol tests.
type memberHarness struct {
	pub *msgq.Pub
	mem *Membership
}

func newMemberHarness(t *testing.T, id string, parts int, join ...string) *memberHarness {
	return newMemberHarnessTimed(t, id, parts, 10*time.Millisecond, 60*time.Millisecond, join...)
}

func newMemberHarnessTimed(t *testing.T, id string, parts int, interval, failAfter time.Duration, join ...string) *memberHarness {
	t.Helper()
	pub := msgq.NewPub()
	ep := fmt.Sprintf("inproc://memtest-%p-%s", t, id)
	if err := pub.Bind(ep); err != nil {
		t.Fatal(err)
	}
	mem, err := NewMembership(MembershipOptions{
		Self:      MemberInfo{ID: id, Endpoint: ep, Ctl: ep + ".ctl"},
		Pub:       pub,
		Join:      join,
		Parts:     parts,
		Interval:  interval,
		FailAfter: failAfter,
	})
	if err != nil {
		pub.Close()
		t.Fatal(err)
	}
	mem.Start()
	return &memberHarness{pub: pub, mem: mem}
}

func (h *memberHarness) kill() {
	h.mem.Kill()
	h.pub.Close()
}

func TestMembershipConvergenceAndFailure(t *testing.T) {
	const parts = 8
	a := newMemberHarness(t, "a", parts)
	defer a.kill()
	b := newMemberHarness(t, "b", parts, a.mem.Self().Ctl)
	defer b.kill()
	// c joins via a only; it must learn b through gossip.
	c := newMemberHarness(t, "c", parts, a.mem.Self().Ctl)
	defer c.kill()
	for _, h := range []*memberHarness{a, b, c} {
		if err := h.mem.WaitMembers(3, 5*time.Second); err != nil {
			t.Fatalf("%s: %v", h.mem.Self().ID, err)
		}
	}
	// Converged views compute identical owner maps.
	deadline := time.Now().Add(5 * time.Second)
	for {
		aa, ba, ca := a.mem.Assignment(), b.mem.Assignment(), c.mem.Assignment()
		if fmt.Sprint(aa.Owner) == fmt.Sprint(ba.Owner) && fmt.Sprint(ba.Owner) == fmt.Sprint(ca.Owner) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assignments did not converge: %v / %v / %v", aa.Owner, ba.Owner, ca.Owner)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill b without a leave; the failure detector must expire it.
	epochBefore := a.mem.Epoch()
	b.kill()
	deadline = time.Now().Add(5 * time.Second)
	for a.mem.Members() != 2 || c.mem.Members() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("members after kill: a=%d c=%d", a.mem.Members(), c.mem.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if a.mem.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance on failure: %d -> %d", epochBefore, a.mem.Epoch())
	}
	// The view updates before the assignment recomputes; poll briefly.
	deadline = time.Now().Add(time.Second)
	for {
		stale := false
		for p := 0; p < parts; p++ {
			if a.mem.Assignment().OwnerOf(p) == "b" {
				stale = true
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("assignment still references dead member")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMembershipGracefulLeave(t *testing.T) {
	a := newMemberHarness(t, "a", 4)
	defer a.kill()
	b := newMemberHarness(t, "b", 4, a.mem.Self().Ctl)
	if err := a.mem.WaitMembers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Leave broadcasts reassign without waiting out FailAfter: generous
	// margin here, but strictly less than the detector's 60ms.
	b.mem.Close()
	deadline := time.Now().Add(50 * time.Millisecond)
	for a.mem.Members() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leave not processed before failure-detector deadline")
		}
		time.Sleep(time.Millisecond)
	}
	b.pub.Close()
}

// startNode builds and starts a Node for handoff tests.
func startNode(t *testing.T, id string, parts int, journal string, collectors []string, join ...string) *Node {
	t.Helper()
	n, err := NewNode(NodeOptions{
		ID:                 id,
		Endpoint:           fmt.Sprintf("inproc://nodetest-%p-%s", t, id),
		Join:               join,
		CollectorEndpoints: collectors,
		Parts:              parts,
		Store:              eventstore.Options{JournalPath: journal, Sync: eventstore.SyncAlways},
		EventOverhead:      time.Nanosecond,
		HeartbeatInterval:  10 * time.Millisecond,
		FailAfter:          60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		n.Close()
		t.Fatal(err)
	}
	return n
}

// TestNodeHandoffContinuity drives routed batches at a two-node cluster,
// kills the owner of a partition, and verifies the survivor recovers the
// partition's journal segment and continues its sequence lane with no
// loss, duplication, or gap.
func TestNodeHandoffContinuity(t *testing.T) {
	const parts = 4
	journal := filepath.Join(t.TempDir(), "journal")
	col := msgq.NewPub(msgq.WithBlockOnFull())
	colEP := fmt.Sprintf("inproc://nodetest-%p-col", t)
	if err := col.Bind(colEP); err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	n0 := startNode(t, "n0", parts, journal, []string{colEP})
	defer n0.Close()
	n1 := startNode(t, "n1", parts, journal, []string{colEP}, n0.CtlEndpoint())
	defer n1.Close()
	for _, n := range []*Node{n0, n1} {
		if err := n.Membership().WaitMembers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitOwnedTotal := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(n0.OwnedPartitions())+len(n1.OwnedPartitions()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("owned partitions: n0=%v n1=%v, want %d total",
					n0.OwnedPartitions(), n1.OwnedPartitions(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitOwnedTotal(parts)

	nodeFor := map[string]*Node{"n0": n0, "n1": n1}
	publish := func(phase string, count int) map[string]bool {
		t.Helper()
		paths := map[string]bool{}
		for i := 0; i < count; i++ {
			path := fmt.Sprintf("/%s/f%03d", phase, i)
			p := eventstore.PartitionForPath(path, parts)
			payload, err := events.MarshalBatch([]events.Event{{Path: path, Op: events.OpCreate, Root: "/mnt", Source: "test"}})
			if err != nil {
				t.Fatal(err)
			}
			// Retry-until-delivered with owner re-resolution: the same
			// loop the routing collector runs.
			deadline := time.Now().Add(5 * time.Second)
			for {
				owner := ""
				for _, n := range []*Node{n0, n1} {
					if len(n.OwnedPartitions()) > 0 {
						owner = n.Membership().Assignment().OwnerOf(p)
						break
					}
				}
				if nd := nodeFor[owner]; nd != nil {
					if delivered := col.PublishCtx(context.Background(), msgq.NodeTopic(owner, p), payload); delivered > 0 {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("could not deliver %s to partition %d owner", path, p)
				}
				time.Sleep(2 * time.Millisecond)
			}
			paths[path] = true
		}
		return paths
	}

	waitStored := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for n0.Stats().Stored+n1.Stats().Stored < want {
			if time.Now().After(deadline) {
				t.Fatalf("stored %d+%d, want %d", n0.Stats().Stored, n1.Stats().Stored, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	phase1 := publish("one", 40)
	waitStored(40)

	// Kill n1 (no leave). n0's failure detector must hand its partitions
	// over by journal replay.
	killed := n1
	nodeFor["n1"] = nil
	killed.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for len(n0.OwnedPartitions()) != parts {
		if time.Now().After(deadline) {
			t.Fatalf("survivor owns %v after kill", n0.OwnedPartitions())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := n0.Stats().Handoffs; h == 0 {
		t.Fatal("survivor recorded no handoffs")
	}

	phase2 := publish("two", 40)
	waitStored(80)

	got, err := n0.Since(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("recovered %d events, want 80", len(got))
	}
	seen := map[string]bool{}
	lastByPart := map[int]uint64{}
	for _, e := range got {
		if seen[e.Path] {
			t.Fatalf("duplicate event %q", e.Path)
		}
		seen[e.Path] = true
		part := int(e.Seq % parts)
		if want := eventstore.PartitionForPath(e.Path, parts); part != want {
			t.Fatalf("event %q seq %d in lane %d, want %d", e.Path, e.Seq, part, want)
		}
		if prev, ok := lastByPart[part]; ok && e.Seq != prev+parts {
			t.Fatalf("lane %d: seq %d after %d (gap or overlap across handoff)", part, e.Seq, prev)
		}
		lastByPart[part] = e.Seq
	}
	for path := range phase1 {
		if !seen[path] {
			t.Fatalf("lost pre-handoff event %q", path)
		}
	}
	for path := range phase2 {
		if !seen[path] {
			t.Fatalf("lost post-handoff event %q", path)
		}
	}
}

// TestMembershipStableUnderHeartbeats: with everyone healthy, the view
// must hold steady across many FailAfter windows — heartbeats alone (not
// just ctl hellos) refresh liveness, so no peer flaps dead/alive and the
// epoch never advances. Regression: heartbeat senders were folded in as
// secondhand sightings, so every peer expired each FailAfter and was
// resurrected by the next gossip round, churning epochs and handoffs.
func TestMembershipStableUnderHeartbeats(t *testing.T) {
	const (
		parts = 4
		// Generous windows so scheduler stalls on a loaded test host can't
		// fake a lapse: with the regression, peers expire every FailAfter
		// regardless of its length, so four windows still expose the churn.
		interval  = 20 * time.Millisecond
		failAfter = 250 * time.Millisecond
	)
	a := newMemberHarnessTimed(t, "a", parts, interval, failAfter)
	defer a.kill()
	b := newMemberHarnessTimed(t, "b", parts, interval, failAfter, a.mem.Self().Ctl)
	defer b.kill()
	for _, h := range []*memberHarness{a, b} {
		if err := h.mem.WaitMembers(2, 5*time.Second); err != nil {
			t.Fatalf("%s: %v", h.mem.Self().ID, err)
		}
	}
	epoch := a.mem.Epoch()
	time.Sleep(4 * failAfter)
	if got := a.mem.Members(); got != 2 {
		t.Fatalf("a sees %d members after quiet period", got)
	}
	if got := b.mem.Members(); got != 2 {
		t.Fatalf("b sees %d members after quiet period", got)
	}
	if got := a.mem.Epoch(); got != epoch {
		t.Fatalf("epoch churned %d -> %d with no membership change", epoch, got)
	}
	if age := a.mem.HeartbeatAge(); age > failAfter {
		t.Fatalf("heartbeat age %v exceeds FailAfter with live peers", age)
	}
}

func TestAdvertiseEndpoint(t *testing.T) {
	cases := []struct{ bound, host, want string }{
		{"tcp://0.0.0.0:7400", "10.0.0.5", "tcp://10.0.0.5:7400"},
		{"tcp://127.0.0.1:7400", "example.com", "tcp://example.com:7400"},
		{"0.0.0.0:9000", "10.0.0.5", "10.0.0.5:9000"},
		{"tcp://0.0.0.0:7400", "", "tcp://0.0.0.0:7400"},
		{"inproc://x", "10.0.0.5", "inproc://x"},
		{"inproc://x.ctl", "10.0.0.5", "inproc://x.ctl"},
		{"", "10.0.0.5", ""},
		{"tcp://garbage", "10.0.0.5", "tcp://garbage"},
	}
	for _, c := range cases {
		if got := AdvertiseEndpoint(c.bound, c.host); got != c.want {
			t.Errorf("AdvertiseEndpoint(%q, %q) = %q, want %q", c.bound, c.host, got, c.want)
		}
	}
}

// TestMembershipIDConflict joins a second participant claiming an
// existing member's ID from a different address: both sides must record
// the conflict (so a joining deployment can abort) and the original must
// not absorb the imposter into its peer table.
func TestMembershipIDConflict(t *testing.T) {
	a := newMemberHarness(t, "dup", 4)
	defer a.kill()
	// The imposter claims "dup" too, from its own endpoint (built by hand:
	// the harness derives endpoints from the ID, which must collide here
	// in identity only, not in bind address).
	bpub := msgq.NewPub()
	bep := fmt.Sprintf("inproc://memtest-%p-dup2", t)
	if err := bpub.Bind(bep); err != nil {
		t.Fatal(err)
	}
	bmem, err := NewMembership(MembershipOptions{
		Self:      MemberInfo{ID: "dup", Endpoint: bep, Ctl: bep + ".ctl"},
		Pub:       bpub,
		Join:      []string{a.mem.Self().Ctl},
		Parts:     4,
		Interval:  10 * time.Millisecond,
		FailAfter: 60 * time.Millisecond,
	})
	if err != nil {
		bpub.Close()
		t.Fatal(err)
	}
	bmem.Start()
	b := &memberHarness{pub: bpub, mem: bmem}
	defer b.kill()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, aSaw := a.mem.Conflict()
		_, bSaw := b.mem.Conflict()
		if aSaw && bSaw {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conflict not detected: a=%v b=%v", aSaw, bSaw)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got, _ := a.mem.Conflict(); got.Endpoint == a.mem.Self().Endpoint {
		t.Fatalf("conflict records our own endpoint %q", got.Endpoint)
	}
	if a.mem.Members() != 1 || b.mem.Members() != 1 {
		t.Fatalf("conflicting participants merged into one view: a=%d b=%d members",
			a.mem.Members(), b.mem.Members())
	}
}

// TestNodeJoinFencedHandoff drives routed traffic at a running single
// node while a second node joins and takes over its rendezvous share of
// the partitions — the join-direction handoff, where the old owner is
// alive and still appending. The fence (new owner waits for the old
// owner's release broadcast before replaying the journal segment) is
// what makes every sequence lane stay gap- and duplicate-free.
func TestNodeJoinFencedHandoff(t *testing.T) {
	const parts = 4
	const total = 200
	journal := filepath.Join(t.TempDir(), "journal")
	col := msgq.NewPub(msgq.WithBlockOnFull())
	colEP := fmt.Sprintf("inproc://nodetest-%p-col", t)
	if err := col.Bind(colEP); err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	n0 := startNode(t, "n0", parts, journal, []string{colEP})
	defer n0.Close()
	if len(n0.OwnedPartitions()) != parts {
		t.Fatalf("founding node owns %v", n0.OwnedPartitions())
	}

	live := []*Node{n0}
	nodeFor := map[string]*Node{"n0": n0}
	publish := func(path string) {
		t.Helper()
		p := eventstore.PartitionForPath(path, parts)
		payload, err := events.MarshalBatch([]events.Event{{Path: path, Op: events.OpCreate, Root: "/mnt", Source: "test"}})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			owner := live[0].Membership().Assignment().OwnerOf(p)
			if nd := nodeFor[owner]; nd != nil {
				if delivered := col.PublishCtx(context.Background(), msgq.NodeTopic(owner, p), payload); delivered > 0 {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("could not deliver %s to partition %d owner", path, p)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Traffic flows while the second node joins: the first 50 events land
	// before the join, the rest race the rebalance.
	var n1 *Node
	for i := 0; i < total; i++ {
		if i == 50 {
			n1 = startNode(t, "n1", parts, journal, []string{colEP}, n0.CtlEndpoint())
			defer n1.Close()
			live = append(live, n1)
			nodeFor["n1"] = n1
		}
		publish(fmt.Sprintf("/join/f%04d", i))
	}

	// The cluster must converge on a 2/2 split with all events stored.
	deadline := time.Now().Add(5 * time.Second)
	for {
		o0, o1 := len(n0.OwnedPartitions()), len(n1.OwnedPartitions())
		stored := n0.Stats().Stored + n1.Stats().Stored
		if o0 == parts/2 && o1 == parts/2 && stored >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: owned n0=%d n1=%d stored=%d/%d", o0, o1, stored, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := n1.Stats().Handoffs; h == 0 {
		t.Fatal("joiner recorded no handoffs")
	}

	var lists [][]events.Event
	for _, n := range live {
		l, err := n.Since(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		lists = append(lists, l)
	}
	got := eventstore.MergeBySeq(lists, 0)
	if len(got) != total {
		t.Fatalf("recovered %d events, want %d", len(got), total)
	}
	seen := map[string]bool{}
	lastByPart := map[int]uint64{}
	for _, e := range got {
		if seen[e.Path] {
			t.Fatalf("duplicate event %q", e.Path)
		}
		seen[e.Path] = true
		part := int(e.Seq % parts)
		if want := eventstore.PartitionForPath(e.Path, parts); part != want {
			t.Fatalf("event %q seq %d in lane %d, want %d", e.Path, e.Seq, part, want)
		}
		if prev, ok := lastByPart[part]; ok && e.Seq != prev+parts {
			t.Fatalf("lane %d: seq %d after %d (gap or overlap across join handoff)", part, e.Seq, prev)
		}
		lastByPart[part] = e.Seq
	}
}
