// Package cluster coordinates N aggregator nodes into one logical
// aggregation tier. The store partitions introduced in PR 3 become the
// unit of distribution: an epoch-numbered assignment map (rendezvous
// hashing with a balance cap) gives every partition exactly one owning
// node, a small membership protocol over the msgq fabric (join hellos,
// heartbeats and leaves on the "cluster.membership" topic) keeps the map
// current as nodes come and go, and partition handoff is journal-cursor
// replay: the new owner reopens the partition's eventstore segment and
// continues its interleaved sequence lane exactly one stride past the
// last durable seq, so consumer cursor vectors stay exact across the
// move.
//
// The paper's topology claim — FSMonitor's tiers connect only through
// the messaging fabric, so any tier scales by adding processes — is what
// makes this layer possible without touching the collector/consumer
// contract: collectors route each batch slice to the owner's inbox topic
// ("events.node.<id>.p<part>"), nodes republish on the same per-partition
// topics a single partitioned aggregator would, and a one-node cluster is
// wire-identical to the classic deployment.
package cluster

import (
	"hash/fnv"
	"net"
	"sort"
	"strconv"
	"strings"
)

// MembershipTopic is the control topic membership heartbeats and leaves
// are broadcast on (each member publishes them on its own event pub).
const MembershipTopic = "cluster.membership"

// TelemetryTopic is the topic members publish federated telemetry
// snapshots on, piggybacking the heartbeat cadence and the same pub/sub
// mesh the membership protocol already maintains.
const TelemetryTopic = "cluster.telemetry"

// MemberInfo identifies a cluster member and how to reach it.
type MemberInfo struct {
	// ID is the unique member name. It must not contain '.' (it is
	// embedded in routed topic names, where '.' is the separator).
	ID string `json:"id"`
	// Endpoint is the member's publisher endpoint: routed event traffic
	// in, membership broadcasts and republished batches out.
	Endpoint string `json:"ep"`
	// Ctl is the member's join inbox (a PULL socket): peers that learn
	// of this member send a hello here so it connects back.
	Ctl string `json:"ctl"`
	// Recovery is the member's recovery-server address, "" when the
	// member serves no recovery (observers).
	Recovery string `json:"rec,omitempty"`
}

// ValidID reports whether id is usable as a member ID.
func ValidID(id string) bool {
	return id != "" && !strings.Contains(id, ".")
}

// AdvertiseEndpoint rewrites the host of a bound address to the
// externally reachable one — a node that binds "tcp://0.0.0.0:7400" must
// advertise a host peers can actually dial. bound may be a msgq endpoint
// ("tcp://host:port") or a bare "host:port" (recovery-server addresses);
// the port is always kept from the bind (ports are per-socket, the
// advertised host is shared). An empty host, an inproc endpoint, or an
// unparseable address returns bound unchanged.
func AdvertiseEndpoint(bound, host string) string {
	if host == "" || bound == "" {
		return bound
	}
	scheme, rest := "", bound
	if i := strings.Index(bound, "://"); i >= 0 {
		scheme, rest = bound[:i+3], bound[i+3:]
		if scheme != "tcp://" {
			return bound
		}
	}
	_, port, err := net.SplitHostPort(rest)
	if err != nil {
		return bound
	}
	return scheme + net.JoinHostPort(host, port)
}

// Assignment is an epoch-numbered partition→owner map. It is a pure
// function of the member set and the partition count, so every node that
// has converged on the same view computes the same map without any
// consensus round; the epoch only orders map generations.
type Assignment struct {
	Epoch uint64
	Parts int
	// Owner[p] is the owning member ID of partition p ("" when the view
	// had no members).
	Owner []string
}

// OwnerOf returns the owner of partition part, "" when unassigned or out
// of range.
func (a Assignment) OwnerOf(part int) string {
	if part < 0 || part >= len(a.Owner) {
		return ""
	}
	return a.Owner[part]
}

// Owned returns the sorted partitions assigned to id.
func (a Assignment) Owned(id string) []int {
	if id == "" {
		return nil
	}
	var out []int
	for p, o := range a.Owner {
		if o == id {
			out = append(out, p)
		}
	}
	return out
}

// rendezvousScore is the highest-random-weight hash for (member,
// partition): FNV-1a over "<id>#<part>".
func rendezvousScore(id string, part int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(part)))
	return h.Sum64()
}

// Assign computes the assignment map for the given member IDs:
// capacity-capped rendezvous hashing. Each partition independently ranks
// the members by rendezvous score and takes the best-ranked one still
// under the balance cap of ceil(parts/members). Pure rendezvous is
// balanced only in expectation — with few partitions per node it happily
// gives one node everything — while the cap guarantees a perfect split;
// rendezvous underneath keeps the map stable, so membership changes move
// few partitions beyond the departed node's own.
func Assign(epoch uint64, parts int, members []string) Assignment {
	a := Assignment{Epoch: epoch, Parts: parts, Owner: make([]string, parts)}
	ids := append([]string(nil), members...)
	sort.Strings(ids)
	ids = compactIDs(ids)
	if len(ids) == 0 {
		return a
	}
	capacity := (parts + len(ids) - 1) / len(ids)
	load := make(map[string]int, len(ids))
	// Pass 1: pure rendezvous. Stable under membership change, but
	// balanced only in expectation.
	for p := range a.Owner {
		best := ""
		var bestScore uint64
		for _, id := range ids {
			if s := rendezvousScore(id, p); best == "" || s > bestScore {
				best, bestScore = id, s
			}
		}
		a.Owner[p] = best
		load[best]++
	}
	// Pass 2: deterministically shed overloaded members' weakest-scored
	// partitions to their best-scoring under-capacity alternative. Only
	// overflow moves, so the stability of pass 1 survives the balancing.
	for _, id := range ids {
		for load[id] > capacity {
			worst := -1
			var worstScore uint64
			for p, o := range a.Owner {
				if o != id {
					continue
				}
				if s := rendezvousScore(id, p); worst < 0 || s < worstScore {
					worst, worstScore = p, s
				}
			}
			alt := ""
			var altScore uint64
			for _, cand := range ids {
				if cand == id || load[cand] >= capacity {
					continue
				}
				if s := rendezvousScore(cand, worst); alt == "" || s > altScore {
					alt, altScore = cand, s
				}
			}
			a.Owner[worst] = alt
			load[id]--
			load[alt]++
		}
	}
	return a
}

// compactIDs removes adjacent duplicates and empty strings from a sorted
// slice.
func compactIDs(ids []string) []string {
	out := ids[:0]
	for i, id := range ids {
		if id == "" || (i > 0 && id == ids[i-1]) {
			continue
		}
		out = append(out, id)
	}
	return out
}
