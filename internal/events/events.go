// Package events defines FSMonitor's standardized file-system event
// representation and the transformations between it and the native event
// vocabularies of the monitoring tools FSMonitor wraps (inotify, kqueue,
// FSEvents, Windows FileSystemWatcher, and the Lustre Changelog).
//
// Following the paper (§II "Summary"), the standard representation is the
// inotify format: an event is a watch root, an operation mask, and a path
// relative to that root, rendered as
//
//	/home/arnab/test CREATE /hello.txt
//
// Rather than defining yet another representation, the resolution layer can
// transform a standard event into any of the common formats by populating
// the corresponding event template (§III-A2); those templates live in
// formats.go.
package events

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"time"
)

// Op is a bitmask of standardized (inotify-style) event operations.
type Op uint32

// Standardized operations. Values mirror inotify's mask bits so that the
// standard representation is directly interoperable with inotify tooling.
const (
	OpAccess     Op = 1 << iota // file was accessed (IN_ACCESS)
	OpModify                    // file was modified (IN_MODIFY)
	OpAttrib                    // metadata changed (IN_ATTRIB)
	OpCloseWrite                // writable file closed (IN_CLOSE_WRITE)
	OpCloseNoWr                 // non-writable file closed (IN_CLOSE_NOWRITE)
	OpOpen                      // file was opened (IN_OPEN)
	OpMovedFrom                 // file moved out of watched dir (IN_MOVED_FROM)
	OpMovedTo                   // file moved into watched dir (IN_MOVED_TO)
	OpCreate                    // file/directory created (IN_CREATE)
	OpDelete                    // file/directory deleted (IN_DELETE)
	OpDeleteSelf                // watched file/directory itself deleted
	OpMoveSelf                  // watched file/directory itself moved
	OpXattr                     // extended attribute changed (Lustre XATTR)
	OpTruncate                  // file truncated (Lustre TRUNC)
	OpOverflow                  // event queue overflowed; events were dropped

	// OpIsDir is OR-ed into the mask when the subject is a directory
	// (IN_ISDIR).
	OpIsDir Op = 1 << 30
)

// OpClose is the union of the two close operations, for callers that do not
// distinguish writable from non-writable closes. The standard renderer
// prints both as CLOSE, matching the paper's Table II output.
const OpClose = OpCloseWrite | OpCloseNoWr

// opNames orders the operation names for deterministic rendering.
var opNames = []struct {
	op   Op
	name string
}{
	{OpAccess, "ACCESS"},
	{OpModify, "MODIFY"},
	{OpAttrib, "ATTRIB"},
	{OpCloseWrite, "CLOSE"},
	{OpCloseNoWr, "CLOSE"},
	{OpOpen, "OPEN"},
	{OpMovedFrom, "MOVED_FROM"},
	{OpMovedTo, "MOVED_TO"},
	{OpCreate, "CREATE"},
	{OpDelete, "DELETE"},
	{OpDeleteSelf, "DELETE_SELF"},
	{OpMoveSelf, "MOVE_SELF"},
	{OpXattr, "XATTR"},
	{OpTruncate, "TRUNCATE"},
	{OpOverflow, "Q_OVERFLOW"},
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for _, e := range opNames {
		// CLOSE appears twice; map the name to the write variant, the
		// more informative of the two.
		if _, dup := m[e.name]; !dup {
			m[e.name] = e.op
		}
	}
	m["ISDIR"] = OpIsDir
	return m
}()

// Has reports whether the mask contains all bits of q.
func (o Op) Has(q Op) bool { return o&q == q }

// HasAny reports whether the mask contains any bit of q.
func (o Op) HasAny(q Op) bool { return o&q != 0 }

// IsDir reports whether the subject of the event is a directory.
func (o Op) IsDir() bool { return o.Has(OpIsDir) }

// String renders the mask in inotifywait style: comma-separated names with
// ISDIR last, e.g. "CREATE,ISDIR". A zero mask renders as "NONE".
func (o Op) String() string {
	var parts []string
	seen := map[string]bool{}
	for _, e := range opNames {
		if o.Has(e.op) && !seen[e.name] {
			parts = append(parts, e.name)
			seen[e.name] = true
		}
	}
	if o.IsDir() {
		parts = append(parts, "ISDIR")
	}
	if len(parts) == 0 {
		return "NONE"
	}
	return strings.Join(parts, ",")
}

// ParseOp parses a mask rendered by Op.String. It accepts any order of
// names and is case-insensitive.
func ParseOp(s string) (Op, error) {
	if s == "" || s == "NONE" {
		return 0, nil
	}
	var o Op
	for _, part := range strings.Split(s, ",") {
		op, ok := nameToOp[strings.ToUpper(strings.TrimSpace(part))]
		if !ok {
			return 0, fmt.Errorf("events: unknown operation %q", part)
		}
		o |= op
	}
	return o, nil
}

// Event is FSMonitor's standardized file-system event. Root is the watched
// path; Path is the subject of the event relative to Root (always beginning
// with a slash, as in inotifywait output); OldPath is populated for
// OpMovedTo events with the path the subject moved from, when known.
type Event struct {
	// Root is the watch root the event was observed under.
	Root string
	// Op is the standardized operation mask.
	Op Op
	// Path is the event subject, relative to Root, beginning with "/".
	Path string
	// OldPath, for OpMovedTo, is the previous path when the rename pair
	// could be correlated; otherwise empty.
	OldPath string
	// Cookie correlates OpMovedFrom/OpMovedTo pairs, as in inotify.
	Cookie uint32
	// Time is when the underlying storage system recorded the event.
	Time time.Time
	// Seq is a monotonically increasing sequence number assigned by the
	// interface layer's event store; zero until stored.
	Seq uint64
	// Source names the DSI that produced the event (e.g. "inotify",
	// "lustre"). Informational.
	Source string
}

// FullPath joins Root and Path into an absolute path.
func (e Event) FullPath() string { return path.Join(e.Root, e.Path) }

// Base returns the final element of the event path.
func (e Event) Base() string { return path.Base(e.Path) }

// IsDir reports whether the subject of the event is a directory.
func (e Event) IsDir() bool { return e.Op.IsDir() }

// String renders the event in the paper's Table II format:
//
//	/home/arnab/test CREATE /hello.txt
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s", e.Root, e.Op, e.Path)
}

// Parse parses an event rendered by Event.String.
func Parse(s string) (Event, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return Event{}, fmt.Errorf("events: malformed event %q: want 3 fields, got %d", s, len(fields))
	}
	op, err := ParseOp(fields[1])
	if err != nil {
		return Event{}, err
	}
	return Event{Root: fields[0], Op: op, Path: fields[2]}, nil
}

// Normalize rewrites the event so that Path is relative to Root with a
// leading slash. Events built from absolute subject paths (as Lustre
// resolution produces) pass through here before standard rendering.
func Normalize(e Event) Event {
	e.Root = path.Clean(e.Root)
	if e.Root == "." {
		e.Root = "/"
	}
	p := e.Path
	// Root "/" is an identity strip (trim the slash, re-add it below) —
	// skipping it avoids a per-event allocation on the hot path.
	if e.Root != "/" && strings.HasPrefix(p, e.Root) {
		p = strings.TrimPrefix(p, e.Root)
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	e.Path = path.Clean(p)
	if e.OldPath != "" {
		op := e.OldPath
		if strings.HasPrefix(op, e.Root) {
			op = strings.TrimPrefix(op, e.Root)
		}
		if !strings.HasPrefix(op, "/") {
			op = "/" + op
		}
		e.OldPath = path.Clean(op)
	}
	return e
}

// Under reports whether the event's subject lies under dir (relative to the
// event root), or is dir itself. dir "/" matches everything.
func (e Event) Under(dir string) bool {
	dir = path.Clean(dir)
	if dir == "/" || dir == "." {
		return true
	}
	p := path.Clean(e.Path)
	return p == dir || strings.HasPrefix(p, dir+"/")
}

// Depth returns the number of path components of the subject below the
// root; "/a" is depth 1, "/a/b" is depth 2.
func (e Event) Depth() int {
	p := strings.Trim(path.Clean(e.Path), "/")
	if p == "" {
		return 0
	}
	return strings.Count(p, "/") + 1
}

// SortBySeq sorts events by their store sequence number, then by time.
func SortBySeq(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Seq != evs[j].Seq {
			return evs[i].Seq < evs[j].Seq
		}
		return evs[i].Time.Before(evs[j].Time)
	})
}
