package events

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestEventKeyStableAcrossSeq(t *testing.T) {
	e := Event{
		Root:   "/mnt/lustre",
		Op:     OpCreate,
		Path:   "/dir/file.txt",
		Source: "lustre",
		Cookie: 7,
		Time:   time.Unix(1552084067, 308560896),
	}
	before := EventKey(e)
	e.Seq = 99 // the store assigns Seq downstream; the key must not move
	if after := EventKey(e); after != before {
		t.Errorf("EventKey changed with Seq: %#x vs %#x", after, before)
	}
	e.Path = "/dir/other.txt"
	if EventKey(e) == before {
		t.Error("EventKey insensitive to Path")
	}
}

func TestEventKeyFieldBoundaries(t *testing.T) {
	// The separator between hashed strings must keep ("ab","c") and
	// ("a","bc") distinct.
	a := Event{Root: "ab", Path: "c", Time: time.Unix(1, 0)}
	b := Event{Root: "a", Path: "bc", Time: time.Unix(1, 0)}
	if EventKey(a) == EventKey(b) {
		t.Error("EventKey collides across the Root/Path boundary")
	}
}

func TestSampleTrace(t *testing.T) {
	e := Event{Path: "/p", Time: time.Unix(3, 0)}
	if SampleTrace(e, 0) || SampleTrace(e, -5) {
		t.Error("SampleTrace fired with sampling disabled")
	}
	if !SampleTrace(e, 1) {
		t.Error("SampleTrace(n=1) must trace every event")
	}
	// Determinism: the same event decides the same way every time.
	want := SampleTrace(e, 16)
	for i := 0; i < 10; i++ {
		if SampleTrace(e, 16) != want {
			t.Fatal("SampleTrace is not deterministic")
		}
	}
	// Roughly 1-in-N: over many distinct events the hit count is near m/n.
	hits := 0
	const m, n = 4096, 16
	for i := 0; i < m; i++ {
		ev := Event{Path: "/f", Seq: 0, Cookie: uint32(i), Time: time.Unix(int64(i), 0)}
		if SampleTrace(ev, n) {
			hits++
		}
	}
	if hits < m/n/4 || hits > m/n*4 {
		t.Errorf("SampleTrace(1-in-%d) hit %d of %d events", n, hits, m)
	}
}

func TestBatchTraceAppend(t *testing.T) {
	var nilTrace *BatchTrace
	nilTrace.Append(TierCollect, 1) // must not panic
	tr := &BatchTrace{ID: 42}
	for i := 0; i < maxSpans+10; i++ {
		tr.Append(TierStore, int64(i))
	}
	if len(tr.Spans) != maxSpans {
		t.Errorf("Append grew past the wire limit: %d spans", len(tr.Spans))
	}
}

// TestCodecTracedRoundTrip: the trace section survives the wire, and its
// cost is exactly 9 + 9*spans bytes on top of the stamped encoding.
func TestCodecTracedRoundTrip(t *testing.T) {
	evs := []Event{
		{Root: "/r", Op: OpCreate, Path: "/f", Source: "s", Time: time.Unix(1, 0)},
		{Root: "/r", Op: OpModify, Path: "/g", Source: "s", Time: time.Unix(2, 0)},
	}
	tr := &BatchTrace{ID: EventKey(evs[1])}
	tr.Append(TierCollect, 100)
	tr.Append(TierResolve, 200)
	tr.Append(TierPublish, 300)

	stamped, err := MarshalBatchStamped(evs, 12345)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := MarshalBatchTraced(evs, 12345, tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(stamped) + 9 + 10*len(tr.Spans); len(traced) != want {
		t.Errorf("traced batch is %d bytes, want %d", len(traced), want)
	}

	got, stamp, gotTr, err := UnmarshalBatchTraced(traced)
	if err != nil {
		t.Fatal(err)
	}
	if stamp != 12345 || len(got) != 2 {
		t.Errorf("stamp=%d events=%d, want 12345, 2", stamp, len(got))
	}
	if gotTr == nil || gotTr.ID != tr.ID {
		t.Fatalf("trace lost: %+v", gotTr)
	}
	if len(gotTr.Spans) != 3 ||
		gotTr.Spans[0] != (Span{Tier: TierCollect, TS: 100}) ||
		gotTr.Spans[2] != (Span{Tier: TierPublish, TS: 300}) {
		t.Errorf("span round trip mismatch: %+v", gotTr.Spans)
	}

	// Trace-agnostic decoders accept a traced batch.
	if got, err := UnmarshalBatch(traced); err != nil || len(got) != 2 {
		t.Errorf("UnmarshalBatch(traced) = %d events, %v", len(got), err)
	}
	if _, stamp, err := UnmarshalBatchStamped(traced); err != nil || stamp != 12345 {
		t.Errorf("UnmarshalBatchStamped(traced) = stamp %d, %v", stamp, err)
	}
	// Truncating inside the trace section must error, not decode.
	for _, cut := range []int{13, 16, 21} {
		if _, _, _, err := UnmarshalBatchTraced(traced[:cut]); err == nil {
			t.Errorf("accepted truncation at %d bytes", cut)
		}
	}
}

// TestCodecUntracedGoldenBytes pins the untraced wire format: without a
// trace the encoding is byte-for-byte the pre-tracing layout
// (count | [stamp] | events) — no flag bit, no trace section, no
// incidental drift. A deployment that never samples pays zero wire bytes.
func TestCodecUntracedGoldenBytes(t *testing.T) {
	evs := []Event{{
		Root:    "/r",
		Op:      OpMovedTo,
		Path:    "/b",
		OldPath: "/a",
		Cookie:  9,
		Seq:     5,
		Source:  "s",
		Time:    time.Unix(0, 1000),
	}}

	// The expected bytes are built by hand from the documented layout.
	golden := func(stamp int64) []byte {
		header := uint32(1)
		if stamp != 0 {
			header |= 1 << 31
		}
		b := binary.LittleEndian.AppendUint32(nil, header)
		if stamp != 0 {
			b = binary.LittleEndian.AppendUint64(b, uint64(stamp))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(OpMovedTo))
		b = binary.LittleEndian.AppendUint32(b, 9)
		b = binary.LittleEndian.AppendUint64(b, 5)
		b = binary.LittleEndian.AppendUint64(b, 1000)
		for _, s := range []string{"/r", "/b", "/a"} {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
			b = append(b, s...)
		}
		b = append(b, 1, 's')
		return b
	}

	plain, err := MarshalBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(0); !bytes.Equal(plain, want) {
		t.Errorf("untraced batch bytes drifted:\n got %x\nwant %x", plain, want)
	}
	stamped, err := MarshalBatchTraced(evs, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(77); !bytes.Equal(stamped, want) {
		t.Errorf("stamped untraced batch bytes drifted:\n got %x\nwant %x", stamped, want)
	}
}
