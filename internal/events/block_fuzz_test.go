package events

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzBlockRoundTrip cross-checks the Block codec against the legacy
// per-event codec on arbitrary payloads: both decoders must agree on
// validity, and on valid input the Block must reproduce the events, the
// stamp, the trace, and — when re-encoded — the exact input bytes (the
// wire is canonical: there is exactly one encoding per batch).
func FuzzBlockRoundTrip(f *testing.F) {
	seedEvents := blockEvents()
	plain, _ := MarshalBatch(seedEvents)
	stamped, _ := MarshalBatchStamped(seedEvents, 123456789)
	traced, _ := MarshalBatchTraced(seedEvents, 99, &BatchTrace{
		ID:    7,
		Spans: []Span{{Tier: TierCollect, TS: 1}, {Tier: TierStore, TS: 2}},
	})
	empty, _ := MarshalBatch(nil)
	f.Add(plain)
	f.Add(stamped)
	f.Add(traced)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(append([]byte(nil), plain...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, payload []byte) {
		evs, stamp, tr, legacyErr := UnmarshalBatchTraced(payload)
		blk, blockErr := DecodeBlock(payload)
		if (legacyErr == nil) != (blockErr == nil) {
			t.Fatalf("decoder disagreement: legacy=%v block=%v", legacyErr, blockErr)
		}
		if legacyErr != nil {
			return
		}
		if blk.Len() != len(evs) {
			t.Fatalf("len = %d, want %d", blk.Len(), len(evs))
		}
		if blk.Stamp() != stamp {
			t.Fatalf("stamp = %d, want %d", blk.Stamp(), stamp)
		}
		bt := blk.Trace()
		if (bt == nil) != (tr == nil) {
			t.Fatalf("trace presence mismatch")
		}
		if tr != nil {
			if bt.ID != tr.ID || len(bt.Spans) != len(tr.Spans) {
				t.Fatalf("trace = %+v, want %+v", bt, tr)
			}
			for i := range tr.Spans {
				if bt.Spans[i] != tr.Spans[i] {
					t.Fatalf("span %d = %+v, want %+v", i, bt.Spans[i], tr.Spans[i])
				}
			}
		}
		for i, e := range evs {
			g := blk.Event(i)
			if !g.Time.Equal(e.Time) {
				t.Fatalf("event %d time mismatch", i)
			}
			g.Time = e.Time
			if g != e {
				t.Fatalf("event %d = %+v, want %+v", i, g, e)
			}
			if blk.EventKey(i) != EventKey(e) {
				t.Fatalf("event %d key mismatch", i)
			}
		}
		// Round trips: the decoded block's wire image is the input; and a
		// block rebuilt from the materialized events encodes to the same
		// bytes the legacy encoder produces.
		if !bytes.Equal(blk.Wire(), payload) {
			t.Fatalf("decoded Wire() != input")
		}
		reb := NewBlock(len(evs), len(payload))
		for _, e := range evs {
			if err := reb.AppendEvent(e); err != nil {
				t.Fatalf("re-append: %v", err)
			}
		}
		reb.SetStamp(stamp)
		if tr != nil {
			reb.SetTrace(&BatchTrace{ID: tr.ID, Spans: append([]Span(nil), tr.Spans...)})
		}
		legacy, err := MarshalBatchTraced(evs, stamp, tr)
		if err != nil {
			t.Fatalf("legacy re-marshal: %v", err)
		}
		if !bytes.Equal(reb.Wire(), legacy) {
			t.Fatalf("re-encoded block != legacy encoder output")
		}
		// The wire is canonical except for one degeneracy: the stamped
		// flag with a zero stamp decodes as "unstamped" and re-encodes
		// without the flag.
		header := binary.LittleEndian.Uint32(payload)
		if !(header&batchStamped != 0 && stamp == 0) && !bytes.Equal(legacy, payload) {
			t.Fatalf("re-encoding is not canonical")
		}
	})
}
