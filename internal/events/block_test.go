package events

import (
	"bytes"
	"testing"
	"time"
)

func blockEvents() []Event {
	return []Event{
		{Root: "/mnt/lustre", Op: OpCreate, Path: "/a/b/file1", Time: time.Unix(0, 1111), Seq: 0, Source: "mdt0"},
		{Root: "/mnt/lustre", Op: OpMovedTo, Path: "/a/b/new", OldPath: "/a/b/old", Cookie: 7, Time: time.Unix(0, 2222), Seq: 0, Source: "mdt0"},
		{Root: "/mnt/beegfs", Op: OpDelete | OpIsDir, Path: "/dir", Time: time.Unix(0, 3333), Seq: 0, Source: "meta1"},
		{Root: "", Op: OpModify, Path: "/x", Time: time.Unix(0, 4444), Seq: 42, Source: ""},
	}
}

func buildBlock(t testing.TB, evs []Event) *Block {
	t.Helper()
	b := NewBlock(len(evs), 256)
	for _, e := range evs {
		if err := b.AppendEvent(e); err != nil {
			t.Fatalf("AppendEvent: %v", err)
		}
	}
	return b
}

// The block's encoder must be byte-identical to the legacy per-event
// codec for every variant: plain, stamped, traced, stamped+traced.
func TestBlockEncodeMatchesCodec(t *testing.T) {
	evs := blockEvents()
	tr := &BatchTrace{ID: 99, Spans: []Span{{Tier: TierCollect, TS: 10}, {Tier: TierResolve, TS: 20}}}
	cases := []struct {
		name  string
		stamp int64
		tr    *BatchTrace
	}{
		{"plain", 0, nil},
		{"stamped", 123456789, nil},
		{"traced", 0, tr},
		{"stamped+traced", 123456789, tr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := MarshalBatchTraced(evs, tc.stamp, tc.tr)
			if err != nil {
				t.Fatalf("MarshalBatchTraced: %v", err)
			}
			b := buildBlock(t, evs)
			b.SetStamp(tc.stamp)
			if tc.tr != nil {
				b.SetTrace(&BatchTrace{ID: tc.tr.ID, Spans: append([]Span(nil), tc.tr.Spans...)})
			}
			if got := b.Wire(); !bytes.Equal(got, want) {
				t.Fatalf("Wire mismatch:\n got %x\nwant %x", got, want)
			}
			// Second call returns the cached image unchanged.
			if got := b.Wire(); !bytes.Equal(got, want) {
				t.Fatalf("cached Wire mismatch")
			}
		})
	}
}

func TestBlockDecodeMatchesCodec(t *testing.T) {
	evs := blockEvents()
	tr := &BatchTrace{ID: 5, Spans: []Span{{Tier: TierPublish, TS: 77}}}
	payload, err := MarshalBatchTraced(evs, 31337, tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := DecodeBlock(payload)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	if b.Stamp() != 31337 {
		t.Fatalf("stamp = %d, want 31337", b.Stamp())
	}
	if b.Trace() == nil || b.Trace().ID != 5 || len(b.Trace().Spans) != 1 {
		t.Fatalf("trace = %+v", b.Trace())
	}
	got := b.AppendEventsTo(nil)
	for i := range evs {
		if !evs[i].Time.Equal(got[i].Time) {
			t.Fatalf("event %d time = %v, want %v", i, got[i].Time, evs[i].Time)
		}
		got[i].Time = evs[i].Time
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
	// The decoded block's wire image is the payload itself, verbatim.
	if w := b.Wire(); &w[0] != &payload[0] {
		t.Fatalf("decoded Wire() is not the received payload")
	}
}

func TestBlockDecodeErrors(t *testing.T) {
	evs := blockEvents()
	payload, _ := MarshalBatchTraced(evs, 9, &BatchTrace{ID: 1, Spans: []Span{{Tier: 0, TS: 1}}})
	for cut := 0; cut < len(payload); cut++ {
		short := payload[:cut]
		if _, err := DecodeBlock(short); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(payload))
		}
		// The legacy decoder must agree that it's invalid.
		if _, _, _, err := UnmarshalBatchTraced(short); err == nil {
			t.Fatalf("legacy decode of %d/%d bytes succeeded", cut, len(payload))
		}
	}
	long := append(append([]byte(nil), payload...), 0xAA)
	if _, err := DecodeBlock(long); err == nil {
		t.Fatal("decode with trailing bytes succeeded")
	}
}

// Seq assignment on a decoded or cloned block re-encodes as a clone of
// the cached wire image with only the seq fields patched, and the result
// matches a full re-marshal.
func TestBlockSeqPatch(t *testing.T) {
	evs := blockEvents()
	payload, _ := MarshalBatchStamped(evs, 555)
	b, err := DecodeBlock(payload)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	orig := append([]byte(nil), payload...)
	for i := 0; i < b.Len(); i++ {
		b.SetSeq(i, uint64(1000+i))
		evs[i].Seq = uint64(1000 + i)
	}
	got := b.Wire()
	want, _ := MarshalBatchStamped(evs, 555)
	if !bytes.Equal(got, want) {
		t.Fatalf("patched wire mismatch:\n got %x\nwant %x", got, want)
	}
	// The received payload must be untouched (it is shared).
	if !bytes.Equal(payload, orig) {
		t.Fatal("seq patch modified the received payload in place")
	}
}

func TestBlockEventKeyMatches(t *testing.T) {
	evs := blockEvents()
	b := buildBlock(t, evs)
	for i, e := range evs {
		if got, want := b.EventKey(i), EventKey(e); got != want {
			t.Fatalf("EventKey(%d) = %#x, want %#x", i, got, want)
		}
	}
	// And on a decoded block (spans into the payload arena).
	payload, _ := MarshalBatch(evs)
	d, err := DecodeBlock(payload)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	for i, e := range evs {
		if got, want := d.EventKey(i), EventKey(e); got != want {
			t.Fatalf("decoded EventKey(%d) = %#x, want %#x", i, got, want)
		}
	}
}

// AppendFrom builds per-partition views sharing the source arena; each
// view encodes exactly as a batch of its own events would.
func TestBlockViewSplit(t *testing.T) {
	evs := blockEvents()
	payload, _ := MarshalBatch(evs)
	src, err := DecodeBlock(payload)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	// Empty view blocks adopt the source arena on first append.
	views := [2]*Block{NewBlock(0, 0), NewBlock(0, 0)}
	var parts [2][]Event
	for i := 0; i < src.Len(); i++ {
		p := i % 2
		views[p].AppendFrom(src, i)
		parts[p] = append(parts[p], evs[i])
	}
	for p := range views {
		want, _ := MarshalBatch(parts[p])
		if got := views[p].Wire(); !bytes.Equal(got, want) {
			t.Fatalf("view %d wire mismatch:\n got %x\nwant %x", p, got, want)
		}
		if !views[p].aliases(src.arena) {
			t.Fatalf("view %d copied the arena instead of aliasing it", p)
		}
	}
}

func TestBlockCloneFrom(t *testing.T) {
	evs := blockEvents()
	src := buildBlock(t, evs)
	src.SetStamp(777)
	src.SetTrace(&BatchTrace{ID: 3, Spans: []Span{{Tier: TierCollect, TS: 1}}})
	srcWire := append([]byte(nil), src.Wire()...)

	var c Block
	c.CloneFrom(src)
	for i := 0; i < c.Len(); i++ {
		c.SetSeq(i, uint64(50+i))
	}
	c.Trace().Append(TierStore, 99)
	c.MarkTraceDirty()

	// Clone mutations must not leak into the source.
	if !bytes.Equal(src.Wire(), srcWire) {
		t.Fatal("clone mutation changed the source wire image")
	}
	if len(src.Trace().Spans) != 1 {
		t.Fatalf("clone trace append leaked: src has %d spans", len(src.Trace().Spans))
	}
	for i := range evs {
		if src.Seq(i) != evs[i].Seq {
			t.Fatalf("clone SetSeq leaked into source at %d", i)
		}
	}
	// And the clone encodes as the mutated batch.
	for i := range evs {
		evs[i].Seq = uint64(50 + i)
	}
	want, _ := MarshalBatchTraced(evs, 777, &BatchTrace{ID: 3, Spans: []Span{{Tier: TierCollect, TS: 1}, {Tier: TierStore, TS: 99}}})
	if got := c.Wire(); !bytes.Equal(got, want) {
		t.Fatalf("clone wire mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestBlockInternSharesBacking(t *testing.T) {
	evs := blockEvents()
	payload, _ := MarshalBatch(evs)
	b, _ := DecodeBlock(payload)
	b.Intern()
	out := b.AppendEventsTo(nil)
	for i := range out {
		if out[i].Path != evs[i].Path {
			t.Fatalf("interned path %d = %q, want %q", i, out[i].Path, evs[i].Path)
		}
	}
	// Materializing twice yields strings sharing one interned backing —
	// spot-check via PathBytes matching the arena region.
	if string(b.PathBytes(0)) != evs[0].Path {
		t.Fatalf("PathBytes(0) = %q", b.PathBytes(0))
	}
}

func TestBlockReset(t *testing.T) {
	evs := blockEvents()
	payload, _ := MarshalBatch(evs)
	b, _ := DecodeBlock(payload)
	b.Reset()
	if b.Len() != 0 || b.Stamp() != 0 || b.Trace() != nil {
		t.Fatalf("Reset left state: len=%d stamp=%d trace=%v", b.Len(), b.Stamp(), b.Trace())
	}
	// After Reset the block owns its arena again and is appendable.
	if err := b.AppendEvent(evs[0]); err != nil {
		t.Fatalf("AppendEvent after Reset: %v", err)
	}
	want, _ := MarshalBatch(evs[:1])
	if got := b.Wire(); !bytes.Equal(got, want) {
		t.Fatalf("post-reset wire mismatch")
	}
	// The original payload is untouched.
	check, err := UnmarshalBatch(payload)
	if err != nil || len(check) != len(evs) {
		t.Fatalf("payload corrupted by Reset+Append: %v", err)
	}
}
