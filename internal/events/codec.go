package events

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Wire codec for events. The scalable monitor ships batches of events from
// collectors to the aggregator and from the aggregator to consumers
// (§IV-2); the codec below is a compact, allocation-conscious binary format
// used as the message-queue payload.
//
// Batch layout (all integers little-endian):
//
//	u32 count | [i64 stamp] | [trace] | count * event
//
// stamp is the monitor's capture timestamp for the whole batch: all
// events of one Changelog read share the moment the monitor first saw
// them, so latency tracing is batch metadata, not a per-event field. It
// rides the wire (surviving the aggregator's no-decode forwarding) but is
// not part of the journal format, and it is present only when the
// batchStamped bit is set in the count word — untraced deployments (the
// default) are byte-identical to a build without tracing.
//
// trace is the sampled span-trace section, present only when the
// batchTraced bit is set:
//
//	u64 traceID | u8 nspans | nspans * (u8 tier | i64 unixNano | u8 len(node) node)
//
// traceID is the sampled event's EventKey; each tier the batch passes
// through appends one span (see trace.go), tagged with the recording
// cluster node's ID ("" outside the aggregation cluster — one length byte
// on the wire). Batches without a sampled event never carry the section,
// so 1-in-N sampling costs (9 + (10+len(node))*spans) wire bytes on
// roughly one batch in N/batchSize.
//
// Event layout:
//
//	u32 op | u32 cookie | u64 seq | i64 unixNano
//	u16 len(root) root | u16 len(path) path | u16 len(old) old | u8 len(src) src

const maxStr = 1<<16 - 1

// Batch-header flag bits in the count word, far outside any real batch
// size and masked off on decode.
const (
	// batchStamped flags a capture-stamped batch.
	batchStamped = uint32(1) << 31
	// batchTraced flags a batch carrying a span-trace section.
	batchTraced = uint32(1) << 30

	batchFlags = batchStamped | batchTraced
)

// MarshalAppend appends the wire encoding of e to buf and returns the
// extended buffer.
func MarshalAppend(buf []byte, e Event) ([]byte, error) {
	if len(e.Root) > maxStr || len(e.Path) > maxStr || len(e.OldPath) > maxStr {
		return nil, fmt.Errorf("events: path component exceeds %d bytes", maxStr)
	}
	if len(e.Source) > 255 {
		return nil, fmt.Errorf("events: source exceeds 255 bytes")
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Op))
	buf = binary.LittleEndian.AppendUint32(buf, e.Cookie)
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
	for _, s := range []string{e.Root, e.Path, e.OldPath} {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, byte(len(e.Source)))
	buf = append(buf, e.Source...)
	return buf, nil
}

// Unmarshal decodes one event from the front of buf, returning the event and
// the remaining bytes.
func Unmarshal(buf []byte) (Event, []byte, error) {
	var e Event
	if len(buf) < 24 {
		return e, buf, fmt.Errorf("events: short buffer (%d bytes) decoding header", len(buf))
	}
	e.Op = Op(binary.LittleEndian.Uint32(buf))
	e.Cookie = binary.LittleEndian.Uint32(buf[4:])
	e.Seq = binary.LittleEndian.Uint64(buf[8:])
	nano := int64(binary.LittleEndian.Uint64(buf[16:]))
	e.Time = time.Unix(0, nano)
	buf = buf[24:]
	var err error
	for _, dst := range []*string{&e.Root, &e.Path, &e.OldPath} {
		*dst, buf, err = readStr16(buf)
		if err != nil {
			return e, buf, err
		}
	}
	if len(buf) < 1 {
		return e, buf, fmt.Errorf("events: short buffer decoding source")
	}
	n := int(buf[0])
	buf = buf[1:]
	if len(buf) < n {
		return e, buf, fmt.Errorf("events: short buffer decoding source body")
	}
	e.Source = string(buf[:n])
	return e, buf[n:], nil
}

func readStr16(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", buf, fmt.Errorf("events: short buffer decoding string length")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", buf, fmt.Errorf("events: short buffer decoding string body (want %d, have %d)", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

// MarshalBatch encodes an untraced batch of events: u32 count followed by
// each event.
func MarshalBatch(evs []Event) ([]byte, error) {
	return MarshalBatchStamped(evs, 0)
}

// MarshalBatchStamped encodes a batch with its capture stamp (unix
// nanoseconds at which the monitor first saw the batch's records; 0 means
// untraced and encodes identically to MarshalBatch).
func MarshalBatchStamped(evs []Event, stamp int64) ([]byte, error) {
	return MarshalBatchTraced(evs, stamp, nil)
}

// MarshalBatchTraced encodes a batch with its capture stamp and — when tr
// is non-nil — the span-trace section of the batch's sampled event. A nil
// trace encodes byte-identically to MarshalBatchStamped, and a zero stamp
// with a nil trace byte-identically to MarshalBatch: untraced deployments
// pay no wire bytes.
func MarshalBatchTraced(evs []Event, stamp int64, tr *BatchTrace) ([]byte, error) {
	if uint64(len(evs)) >= uint64(batchTraced) {
		return nil, fmt.Errorf("events: batch of %d events exceeds wire limit", len(evs))
	}
	if tr != nil && len(tr.Spans) > maxSpans {
		return nil, fmt.Errorf("events: trace of %d spans exceeds wire limit", len(tr.Spans))
	}
	header := uint32(len(evs))
	if stamp != 0 {
		header |= batchStamped
	}
	if tr != nil {
		header |= batchTraced
	}
	buf := binary.LittleEndian.AppendUint32(nil, header)
	if stamp != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(stamp))
	}
	if tr != nil {
		buf = binary.LittleEndian.AppendUint64(buf, tr.ID)
		buf = append(buf, byte(len(tr.Spans)))
		for _, sp := range tr.Spans {
			buf = append(buf, sp.Tier)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.TS))
			node := sp.Node
			if len(node) > maxNode {
				node = node[:maxNode]
			}
			buf = append(buf, byte(len(node)))
			buf = append(buf, node...)
		}
	}
	var err error
	for _, e := range evs {
		if buf, err = MarshalAppend(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalBatch decodes a batch encoded by MarshalBatch (or the stamped/
// traced variants — the stamp and trace, if any, are discarded).
func UnmarshalBatch(buf []byte) ([]Event, error) {
	evs, _, _, err := UnmarshalBatchTraced(buf)
	return evs, err
}

// UnmarshalBatchStamped decodes a batch along with its capture stamp
// (0 when the batch is unstamped). A trace section, if present, is
// decoded and discarded.
func UnmarshalBatchStamped(buf []byte) ([]Event, int64, error) {
	evs, stamp, _, err := UnmarshalBatchTraced(buf)
	return evs, stamp, err
}

// UnmarshalBatchTraced decodes a batch along with its capture stamp (0
// when unstamped) and span-trace section (nil when untraced).
func UnmarshalBatchTraced(buf []byte) ([]Event, int64, *BatchTrace, error) {
	if len(buf) < 4 {
		return nil, 0, nil, fmt.Errorf("events: short buffer decoding batch count")
	}
	header := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	n := header &^ batchFlags
	var stamp int64
	if header&batchStamped != 0 {
		if len(buf) < 8 {
			return nil, 0, nil, fmt.Errorf("events: short buffer decoding batch stamp")
		}
		stamp = int64(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	var tr *BatchTrace
	if header&batchTraced != 0 {
		if len(buf) < 9 {
			return nil, 0, nil, fmt.Errorf("events: short buffer decoding batch trace")
		}
		tr = &BatchTrace{ID: binary.LittleEndian.Uint64(buf)}
		nspans := int(buf[8])
		buf = buf[9:]
		tr.Spans = make([]Span, nspans)
		for i := range tr.Spans {
			// Spans are variable-length (the node ID), so bounds-check each
			// one instead of the whole section.
			if len(buf) < 10 {
				return nil, 0, nil, fmt.Errorf("events: short buffer decoding %d trace spans", nspans)
			}
			sp := Span{Tier: buf[0], TS: int64(binary.LittleEndian.Uint64(buf[1:]))}
			nl := int(buf[9])
			buf = buf[10:]
			if len(buf) < nl {
				return nil, 0, nil, fmt.Errorf("events: short buffer decoding trace span node")
			}
			sp.Node = string(buf[:nl])
			buf = buf[nl:]
			tr.Spans[i] = sp
		}
	}
	// Preallocate from the claimed count, bounded by what the buffer
	// could possibly hold (an event is at least 31 wire bytes) so a
	// corrupt count word can't force a huge allocation.
	capHint := n
	if most := uint32(len(buf)/31) + 1; capHint > most {
		capHint = most
	}
	evs := make([]Event, 0, capHint)
	var (
		e   Event
		err error
	)
	for i := uint32(0); i < n; i++ {
		if e, buf, err = Unmarshal(buf); err != nil {
			return nil, 0, nil, fmt.Errorf("events: batch entry %d: %w", i, err)
		}
		evs = append(evs, e)
	}
	if len(buf) != 0 {
		return nil, 0, nil, fmt.Errorf("events: %d trailing bytes after batch", len(buf))
	}
	return evs, stamp, tr, nil
}
