package events

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Wire codec for events. The scalable monitor ships batches of events from
// collectors to the aggregator and from the aggregator to consumers
// (§IV-2); the codec below is a compact, allocation-conscious binary format
// used as the message-queue payload.
//
// Layout per event (all integers little-endian):
//
//	u32 op | u32 cookie | u64 seq | i64 unixNano
//	u16 len(root) root | u16 len(path) path | u16 len(old) old | u8 len(src) src

const maxStr = 1<<16 - 1

// MarshalAppend appends the wire encoding of e to buf and returns the
// extended buffer.
func MarshalAppend(buf []byte, e Event) ([]byte, error) {
	if len(e.Root) > maxStr || len(e.Path) > maxStr || len(e.OldPath) > maxStr {
		return nil, fmt.Errorf("events: path component exceeds %d bytes", maxStr)
	}
	if len(e.Source) > 255 {
		return nil, fmt.Errorf("events: source exceeds 255 bytes")
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Op))
	buf = binary.LittleEndian.AppendUint32(buf, e.Cookie)
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
	for _, s := range []string{e.Root, e.Path, e.OldPath} {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, byte(len(e.Source)))
	buf = append(buf, e.Source...)
	return buf, nil
}

// Unmarshal decodes one event from the front of buf, returning the event and
// the remaining bytes.
func Unmarshal(buf []byte) (Event, []byte, error) {
	var e Event
	if len(buf) < 24 {
		return e, buf, fmt.Errorf("events: short buffer (%d bytes) decoding header", len(buf))
	}
	e.Op = Op(binary.LittleEndian.Uint32(buf))
	e.Cookie = binary.LittleEndian.Uint32(buf[4:])
	e.Seq = binary.LittleEndian.Uint64(buf[8:])
	nano := int64(binary.LittleEndian.Uint64(buf[16:]))
	e.Time = time.Unix(0, nano)
	buf = buf[24:]
	var err error
	for _, dst := range []*string{&e.Root, &e.Path, &e.OldPath} {
		*dst, buf, err = readStr16(buf)
		if err != nil {
			return e, buf, err
		}
	}
	if len(buf) < 1 {
		return e, buf, fmt.Errorf("events: short buffer decoding source")
	}
	n := int(buf[0])
	buf = buf[1:]
	if len(buf) < n {
		return e, buf, fmt.Errorf("events: short buffer decoding source body")
	}
	e.Source = string(buf[:n])
	return e, buf[n:], nil
}

func readStr16(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", buf, fmt.Errorf("events: short buffer decoding string length")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", buf, fmt.Errorf("events: short buffer decoding string body (want %d, have %d)", n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

// MarshalBatch encodes a batch of events: u32 count followed by each event.
func MarshalBatch(evs []Event) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(evs)))
	var err error
	for _, e := range evs {
		if buf, err = MarshalAppend(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalBatch decodes a batch encoded by MarshalBatch.
func UnmarshalBatch(buf []byte) ([]Event, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("events: short buffer decoding batch count")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	evs := make([]Event, 0, n)
	var (
		e   Event
		err error
	)
	for i := uint32(0); i < n; i++ {
		if e, buf, err = Unmarshal(buf); err != nil {
			return nil, fmt.Errorf("events: batch entry %d: %w", i, err)
		}
		evs = append(evs, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("events: %d trailing bytes after batch", len(buf))
	}
	return evs, nil
}
