package events

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{OpCreate, "CREATE"},
		{OpCreate | OpIsDir, "CREATE,ISDIR"},
		{OpModify, "MODIFY"},
		{OpCloseWrite, "CLOSE"},
		{OpCloseNoWr, "CLOSE"},
		{OpCloseWrite | OpCloseNoWr, "CLOSE"},
		{OpMovedFrom, "MOVED_FROM"},
		{OpMovedTo, "MOVED_TO"},
		{OpDelete | OpIsDir, "DELETE,ISDIR"},
		{OpOverflow, "Q_OVERFLOW"},
		{0, "NONE"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%#x).String() = %q, want %q", uint32(c.op), got, c.want)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	ops := []Op{
		OpCreate, OpCreate | OpIsDir, OpModify, OpDelete,
		OpMovedFrom | OpIsDir, OpAttrib, OpXattr, OpTruncate, 0,
	}
	for _, op := range ops {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		// Round-trip must at least preserve rendering (CLOSE collapses
		// the two close bits by design).
		if got.String() != op.String() {
			t.Errorf("round trip %q -> %q", op.String(), got.String())
		}
	}
}

func TestParseOpErrors(t *testing.T) {
	if _, err := ParseOp("CREATE,BOGUS"); err == nil {
		t.Fatal("ParseOp accepted unknown op name")
	}
	if op, err := ParseOp(""); err != nil || op != 0 {
		t.Fatalf("ParseOp(\"\") = %v, %v; want 0, nil", op, err)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Root: "/home/arnab/test", Op: OpCreate, Path: "/hello.txt"}
	if got, want := e.String(), "/home/arnab/test CREATE /hello.txt"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	e = Event{Root: "/home/arnab/test", Op: OpCreate | OpIsDir, Path: "/okdir"}
	if got, want := e.String(), "/home/arnab/test CREATE,ISDIR /okdir"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseEvent(t *testing.T) {
	e, err := Parse("/mnt/lustre DELETE,ISDIR /okdir")
	if err != nil {
		t.Fatal(err)
	}
	want := Event{Root: "/mnt/lustre", Op: OpDelete | OpIsDir, Path: "/okdir"}
	if e != want {
		t.Errorf("Parse = %+v, want %+v", e, want)
	}
	if _, err := Parse("too few"); err == nil {
		t.Error("Parse accepted malformed input")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in       Event
		wantPath string
	}{
		{Event{Root: "/mnt/lustre", Path: "/mnt/lustre/a/b.txt"}, "/a/b.txt"},
		{Event{Root: "/mnt/lustre", Path: "a/b.txt"}, "/a/b.txt"},
		{Event{Root: "/mnt/lustre", Path: "/a/b.txt"}, "/a/b.txt"},
		{Event{Root: "/", Path: "/x"}, "/x"},
	}
	for _, c := range cases {
		got := Normalize(c.in)
		if got.Path != c.wantPath {
			t.Errorf("Normalize(%+v).Path = %q, want %q", c.in, got.Path, c.wantPath)
		}
	}
	// OldPath is normalized too.
	e := Normalize(Event{Root: "/r", Path: "/r/new", OldPath: "/r/old"})
	if e.OldPath != "/old" {
		t.Errorf("OldPath = %q, want /old", e.OldPath)
	}
}

func TestUnderAndDepth(t *testing.T) {
	e := Event{Root: "/r", Path: "/a/b/c.txt"}
	for dir, want := range map[string]bool{
		"/":      true,
		"/a":     true,
		"/a/b":   true,
		"/a/bc":  false,
		"/other": false,
	} {
		if got := e.Under(dir); got != want {
			t.Errorf("Under(%q) = %v, want %v", dir, got, want)
		}
	}
	if d := e.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	if d := (Event{Path: "/"}).Depth(); d != 0 {
		t.Errorf("Depth(/) = %d, want 0", d)
	}
}

func TestFullPath(t *testing.T) {
	e := Event{Root: "/mnt/lustre", Path: "/dir/f.txt"}
	if got := e.FullPath(); got != "/mnt/lustre/dir/f.txt" {
		t.Errorf("FullPath = %q", got)
	}
	if got := e.Base(); got != "f.txt" {
		t.Errorf("Base = %q", got)
	}
}

func TestTransformFormats(t *testing.T) {
	e := Event{Root: "/r", Op: OpCreate, Path: "/f.txt"}
	for _, f := range Formats() {
		s, err := Transform(e, f)
		if err != nil {
			t.Fatalf("Transform(%s): %v", f, err)
		}
		if s == "" {
			t.Errorf("Transform(%s) empty", f)
		}
	}
	if _, err := Transform(e, Format("nope")); err == nil {
		t.Error("Transform accepted unknown format")
	}
}

func TestTransformVocabularies(t *testing.T) {
	cases := []struct {
		op   Op
		f    Format
		want string
	}{
		{OpCreate, FormatInotify, "IN_CREATE"},
		{OpCreate | OpIsDir, FormatInotify, "IN_CREATE|IN_ISDIR"},
		{OpModify, FormatKqueue, "NOTE_WRITE"},
		{OpOpen | OpModify | OpCloseWrite, FormatKqueue, "NOTE_OPEN|NOTE_WRITE|NOTE_CLOSE"},
		{OpCreate, FormatFSEvents, "ItemCreated"},
		{OpModify, FormatFSEvents, "ItemModified"},
		{OpCreate, FormatFSW, "Created"},
		{OpDelete, FormatFSW, "Deleted"},
		{OpMovedTo, FormatFSW, "Renamed"},
		{OpModify, FormatFSW, "Changed"},
		{OpCreate, FormatLustre, "01CREAT"},
		{OpCreate | OpIsDir, FormatLustre, "02MKDIR"},
		{OpDelete, FormatLustre, "06UNLNK"},
		{OpDelete | OpIsDir, FormatLustre, "07RMDIR"},
		{OpMovedFrom, FormatLustre, "08RENME"},
		{OpMovedTo, FormatLustre, "09RNMTO"},
		{OpModify, FormatLustre, "17MTIME"},
	}
	for _, c := range cases {
		e := Event{Root: "/r", Op: c.op, Path: "/p"}
		s, err := Transform(e, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, c.want) {
			t.Errorf("Transform(%v, %s) = %q, want substring %q", c.op, c.f, s, c.want)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := Event{
		Root:    "/mnt/lustre",
		Op:      OpMovedTo | OpIsDir,
		Path:    "/okdir/hi.txt",
		OldPath: "/hi.txt",
		Cookie:  42,
		Time:    time.Unix(1552084067, 308560896),
		Seq:     11332885,
		Source:  "lustre",
	}
	buf, err := MarshalAppend(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !got.Time.Equal(e.Time) {
		t.Errorf("time mismatch: %v vs %v", got.Time, e.Time)
	}
	got.Time, e.Time = time.Time{}, time.Time{}
	if got != e {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

// The capture stamp is batch metadata: a traced batch costs exactly 8
// extra wire bytes in total, and an untraced batch (the production
// default, telemetry off) is byte-identical to a build without latency
// tracing.
func TestCodecBatchStamp(t *testing.T) {
	evs := []Event{
		{Root: "/r", Op: OpCreate, Path: "/f", Source: "s", Time: time.Unix(1, 0)},
		{Root: "/r", Op: OpModify, Path: "/g", Source: "s", Time: time.Unix(2, 0)},
	}
	plain, err := MarshalBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	stamped, err := MarshalBatchStamped(evs, 1552084067308560900)
	if err != nil {
		t.Fatal(err)
	}
	if len(stamped) != len(plain)+8 {
		t.Errorf("stamped batch is %d bytes, want %d (unstamped %d + 8)",
			len(stamped), len(plain)+8, len(plain))
	}
	got, stamp, err := UnmarshalBatchStamped(stamped)
	if err != nil {
		t.Fatal(err)
	}
	if stamp != 1552084067308560900 {
		t.Errorf("stamp = %d, want 1552084067308560900", stamp)
	}
	if len(got) != 2 || got[0].Path != "/f" || got[1].Path != "/g" {
		t.Errorf("stamped batch round trip mismatch: %+v", got)
	}
	// The stamp-agnostic decoder accepts both forms.
	if got, err := UnmarshalBatch(stamped); err != nil || len(got) != 2 {
		t.Errorf("UnmarshalBatch(stamped) = %d events, %v", len(got), err)
	}
	if _, stamp, err := UnmarshalBatchStamped(plain); err != nil || stamp != 0 {
		t.Errorf("UnmarshalBatchStamped(plain) = stamp %d, %v; want 0, nil", stamp, err)
	}
	// A flagged header with the stamp truncated away must error, not decode.
	if _, _, err := UnmarshalBatchStamped(stamped[:8]); err == nil {
		t.Error("UnmarshalBatchStamped accepted truncated stamp")
	}
}

func TestCodecBatch(t *testing.T) {
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, Event{Root: "/r", Op: OpCreate, Path: "/f", Seq: uint64(i), Time: time.Unix(int64(i), 0)})
	}
	buf, err := MarshalBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("len = %d, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i].Seq != evs[i].Seq {
			t.Errorf("entry %d: seq %d, want %d", i, got[i].Seq, evs[i].Seq)
		}
	}
}

func TestCodecTruncated(t *testing.T) {
	e := Event{Root: "/r", Op: OpCreate, Path: "/f", Source: "s"}
	buf, err := MarshalAppend(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Unmarshal(buf[:cut]); err == nil {
			t.Errorf("Unmarshal accepted truncation at %d bytes", cut)
		}
	}
	if _, err := UnmarshalBatch([]byte{1, 2}); err == nil {
		t.Error("UnmarshalBatch accepted short count")
	}
}

// Property: any event with printable strings round-trips through the codec.
func TestCodecQuick(t *testing.T) {
	f := func(op uint32, cookie uint32, seq uint64, root, p, old, src string) bool {
		if len(root) > 1000 || len(p) > 1000 || len(old) > 1000 || len(src) > 200 {
			return true // skip oversized inputs, covered elsewhere
		}
		e := Event{
			Root: root, Op: Op(op), Path: p, OldPath: old,
			Cookie: cookie, Seq: seq, Source: src,
			Time: time.Unix(0, int64(seq)),
		}
		buf, err := MarshalAppend(nil, e)
		if err != nil {
			return false
		}
		got, rest, err := Unmarshal(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Root == e.Root && got.Path == e.Path && got.OldPath == e.OldPath &&
			got.Op == e.Op && got.Cookie == e.Cookie && got.Seq == e.Seq && got.Source == e.Source &&
			got.Time.Equal(e.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: string render/parse preserves rendering for arbitrary masks.
func TestOpStringParseQuick(t *testing.T) {
	f := func(raw uint32) bool {
		op := Op(raw)
		parsed, err := ParseOp(op.String())
		if err != nil {
			return false
		}
		return parsed.String() == op.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSortBySeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var evs []Event
	for i := 0; i < 50; i++ {
		evs = append(evs, Event{Seq: uint64(rng.Intn(25)), Time: time.Unix(int64(rng.Intn(10)), 0)})
	}
	SortBySeq(evs)
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq > evs[i].Seq {
			t.Fatalf("not sorted at %d: %d > %d", i, evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i-1].Seq == evs[i].Seq && evs[i-1].Time.After(evs[i].Time) {
			t.Fatalf("ties not time-ordered at %d", i)
		}
	}
}

func TestMarshalOversized(t *testing.T) {
	e := Event{Root: strings.Repeat("x", 1<<16)}
	if _, err := MarshalAppend(nil, e); err == nil {
		t.Error("accepted oversized root")
	}
	e = Event{Source: strings.Repeat("s", 300)}
	if _, err := MarshalAppend(nil, e); err == nil {
		t.Error("accepted oversized source")
	}
}

func TestFormatsStable(t *testing.T) {
	if !reflect.DeepEqual(Formats(), Formats()) {
		t.Error("Formats not stable")
	}
	if len(Formats()) != 6 {
		t.Errorf("expected 6 formats, got %d", len(Formats()))
	}
}

// Property: Normalize is idempotent and always yields a slash-prefixed,
// cleaned path under the cleaned root.
func TestNormalizeIdempotentQuick(t *testing.T) {
	f := func(root, p, old string) bool {
		if len(root) > 100 || len(p) > 100 || len(old) > 100 {
			return true
		}
		e1 := Normalize(Event{Root: root, Path: p, OldPath: old})
		e2 := Normalize(e1)
		if e1 != e2 {
			return false
		}
		return strings.HasPrefix(e1.Path, "/") && (e1.OldPath == "" || strings.HasPrefix(e1.OldPath, "/"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
