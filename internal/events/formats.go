package events

import (
	"fmt"
	"strings"
)

// Format identifies an event representation the resolution layer can render
// into (§III-A2: "we instead support transformation into any of the commonly
// defined formats ... by populating the appropriate event template").
type Format string

// Supported event representations.
const (
	FormatStandard Format = "standard" // FSMonitor's inotify-style default
	FormatInotify  Format = "inotify"  // raw inotify mask names (IN_*)
	FormatKqueue   Format = "kqueue"   // BSD kqueue NOTE_* vnode filter flags
	FormatFSEvents Format = "fsevents" // macOS FSEvents Item* flags
	FormatFSW      Format = "fsw"      // Windows FileSystemWatcher event names
	FormatLustre   Format = "lustre"   // Lustre Changelog type names
)

// Formats lists every representation Transform accepts, in a stable order.
func Formats() []Format {
	return []Format{FormatStandard, FormatInotify, FormatKqueue, FormatFSEvents, FormatFSW, FormatLustre}
}

// Transform renders the event in the requested representation. The result is
// a single display line; for FormatStandard it equals e.String(). Unknown
// formats return an error rather than guessing.
func Transform(e Event, f Format) (string, error) {
	switch f {
	case FormatStandard:
		return e.String(), nil
	case FormatInotify:
		return fmt.Sprintf("%s %s %s", e.Root, InotifyMaskNames(e.Op), e.Path), nil
	case FormatKqueue:
		return fmt.Sprintf("%s %s %s", e.Root, KqueueNotes(e.Op), e.Path), nil
	case FormatFSEvents:
		return fmt.Sprintf("%s %s %s", e.FullPath(), FSEventsFlags(e.Op), dirMarker(e)), nil
	case FormatFSW:
		return fmt.Sprintf("%s: %s", FSWChangeType(e.Op), e.FullPath()), nil
	case FormatLustre:
		return fmt.Sprintf("%s %s %s", LustreType(e.Op), e.Root, e.Path), nil
	default:
		return "", fmt.Errorf("events: unknown format %q", f)
	}
}

func dirMarker(e Event) string {
	if e.IsDir() {
		return "IsDir"
	}
	return "IsFile"
}

// InotifyMaskNames renders the mask using raw inotify constant names, e.g.
// "IN_CREATE|IN_ISDIR".
func InotifyMaskNames(o Op) string {
	pairs := []struct {
		op   Op
		name string
	}{
		{OpAccess, "IN_ACCESS"},
		{OpModify, "IN_MODIFY"},
		{OpAttrib, "IN_ATTRIB"},
		{OpCloseWrite, "IN_CLOSE_WRITE"},
		{OpCloseNoWr, "IN_CLOSE_NOWRITE"},
		{OpOpen, "IN_OPEN"},
		{OpMovedFrom, "IN_MOVED_FROM"},
		{OpMovedTo, "IN_MOVED_TO"},
		{OpCreate, "IN_CREATE"},
		{OpDelete, "IN_DELETE"},
		{OpDeleteSelf, "IN_DELETE_SELF"},
		{OpMoveSelf, "IN_MOVE_SELF"},
		{OpXattr, "IN_ATTRIB"},
		{OpTruncate, "IN_MODIFY"},
		{OpOverflow, "IN_Q_OVERFLOW"},
	}
	var parts []string
	seen := map[string]bool{}
	for _, p := range pairs {
		if o.Has(p.op) && !seen[p.name] {
			parts = append(parts, p.name)
			seen[p.name] = true
		}
	}
	if o.IsDir() {
		parts = append(parts, "IN_ISDIR")
	}
	if len(parts) == 0 {
		return "IN_NONE"
	}
	return strings.Join(parts, "|")
}

// KqueueNotes renders the mask as kqueue EVFILT_VNODE fflags (§II-A:
// "Opening, creating, and modifying a file results in NOTE_OPEN,
// NOTE_EXTEND, NOTE_WRITE, and NOTE_CLOSE events").
func KqueueNotes(o Op) string {
	var parts []string
	add := func(cond bool, name string) {
		if cond {
			parts = append(parts, name)
		}
	}
	add(o.HasAny(OpOpen), "NOTE_OPEN")
	add(o.HasAny(OpCreate|OpMovedTo), "NOTE_EXTEND")
	add(o.HasAny(OpModify|OpTruncate), "NOTE_WRITE")
	add(o.HasAny(OpClose), "NOTE_CLOSE")
	add(o.HasAny(OpDelete|OpDeleteSelf), "NOTE_DELETE")
	add(o.HasAny(OpMovedFrom|OpMoveSelf), "NOTE_RENAME")
	add(o.HasAny(OpAttrib|OpXattr), "NOTE_ATTRIB")
	if len(parts) == 0 {
		return "NOTE_NONE"
	}
	return strings.Join(parts, "|")
}

// FSEventsFlags renders the mask as macOS FSEvents item flags ("Creating and
// modifying a file will result in ItemCreated and ItemModified events").
func FSEventsFlags(o Op) string {
	var parts []string
	add := func(cond bool, name string) {
		if cond {
			parts = append(parts, name)
		}
	}
	add(o.HasAny(OpCreate), "ItemCreated")
	add(o.HasAny(OpModify|OpTruncate|OpClose), "ItemModified")
	add(o.HasAny(OpDelete|OpDeleteSelf), "ItemRemoved")
	add(o.HasAny(OpMovedFrom|OpMovedTo|OpMoveSelf), "ItemRenamed")
	add(o.HasAny(OpAttrib), "ItemInodeMetaMod")
	add(o.HasAny(OpXattr), "ItemXattrMod")
	if len(parts) == 0 {
		return "ItemNone"
	}
	return strings.Join(parts, "|")
}

// FSWChangeType renders the mask as a Windows FileSystemWatcher change type.
// FileSystemWatcher reports only four event types: Changed, Created,
// Deleted, and Renamed (§II-A); everything else maps onto Changed.
func FSWChangeType(o Op) string {
	switch {
	case o.HasAny(OpCreate):
		return "Created"
	case o.HasAny(OpDelete | OpDeleteSelf):
		return "Deleted"
	case o.HasAny(OpMovedFrom | OpMovedTo | OpMoveSelf):
		return "Renamed"
	default:
		return "Changed"
	}
}

// LustreType renders the mask as the closest Lustre Changelog record type
// (Table I / §IV-1).
func LustreType(o Op) string {
	switch {
	case o.Has(OpCreate | OpIsDir):
		return "02MKDIR"
	case o.HasAny(OpCreate):
		return "01CREAT"
	case o.Has(OpDelete|OpIsDir) || o.Has(OpDeleteSelf|OpIsDir):
		return "07RMDIR"
	case o.HasAny(OpDelete | OpDeleteSelf):
		return "06UNLNK"
	case o.HasAny(OpMovedFrom):
		return "08RENME"
	case o.HasAny(OpMovedTo | OpMoveSelf):
		return "09RNMTO"
	case o.HasAny(OpTruncate):
		return "12TRUNC"
	case o.HasAny(OpXattr):
		return "15XATTR"
	case o.HasAny(OpAttrib):
		return "14SATTR"
	case o.HasAny(OpModify | OpClose):
		return "17MTIME"
	default:
		return "00MARK"
	}
}
