package events

import "fmt"

// Per-event span tracing vocabulary. A deterministic 1-in-N sampler keyed
// on an event's identity hash (EventKey) selects events to trace; the
// batch carrying a sampled event gains a trace section in its wire header
// (see codec.go), and every tier the batch passes through appends a
// (tier, timestamp) span. Keying on the event — not the batch — means the
// same event is traced at every hop, however batches are split or
// re-encoded along the way.

// Span tier identifiers, in pipeline order. The wire format stores the
// byte; TierName renders it.
const (
	TierCollect   uint8 = iota // collector read the Changelog batch
	TierResolve                // Algorithm-1 resolution finished
	TierPublish                // collector publish accepted
	TierPartition              // aggregator routed the batch to its partition
	TierStore                  // reliable-store append finished
	TierRepublish              // aggregator republish to consumers
	TierDeliver                // consumer handed the event to the application

	// NumTiers is the span-chain length of a complete collect→deliver
	// trace.
	NumTiers = int(TierDeliver) + 1
)

var tierNames = [NumTiers]string{
	"collect", "resolve", "publish", "partition", "store", "republish", "deliver",
}

// TierName renders a span tier ("collect", ..., "deliver"; unknown tiers
// render as "tier<N>").
func TierName(t uint8) string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier%d", t)
}

// Span is one tier's hop: the tier, the wall clock (unix nanoseconds) at
// which the traced batch passed it, and — on clustered deployments — the
// ID of the node that recorded it. Node is "" for hops recorded outside
// the aggregation cluster (collectors, the classic aggregator, consumers);
// a traced event that crosses a handoff or stray-forward carries each
// hop's owner, so the stitched chain shows where every tier ran.
type Span struct {
	Tier uint8
	TS   int64
	Node string
}

// maxSpans is the wire limit on spans per trace (the count is one byte).
// A complete chain is NumTiers spans; the headroom absorbs future tiers
// and duplicated hops without a format change. maxNode bounds a span's
// node ID the same way (its wire length is one byte).
const (
	maxSpans = 255
	maxNode  = 255
)

// BatchTrace is the trace section a sampled batch carries: the sampled
// event's identity hash as the trace ID and the spans appended so far.
type BatchTrace struct {
	ID    uint64
	Spans []Span
}

// Append records one hop. Safe on a nil receiver (no-op); spans beyond
// the wire limit are dropped rather than failing the batch.
func (t *BatchTrace) Append(tier uint8, ts int64) {
	t.AppendNode(tier, ts, "")
}

// AppendNode records one hop tagged with the recording node's ID — the
// cross-node stitching variant cluster nodes use. Safe on a nil receiver
// (no-op); spans beyond the wire limit are dropped and over-long node IDs
// truncated rather than failing the batch.
func (t *BatchTrace) AppendNode(tier uint8, ts int64, node string) {
	if t == nil || len(t.Spans) >= maxSpans {
		return
	}
	if len(node) > maxNode {
		node = node[:maxNode]
	}
	t.Spans = append(t.Spans, Span{Tier: tier, TS: ts, Node: node})
}

// EventKey hashes an event's wire-stable identity (FNV-1a over root, path,
// old path, source, op, cookie, and record time) — the same event yields
// the same key at every tier, before and after the store assigns its Seq.
func EventKey(e Event) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mix(e.Root)
	mix(e.Path)
	mix(e.OldPath)
	mix(e.Source)
	for _, v := range [...]uint64{uint64(e.Op), uint64(e.Cookie), uint64(e.Time.UnixNano())} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}

// SampleTrace is the deterministic 1-in-n sampler: an event is traced iff
// its key falls in the sampled residue class. n <= 0 disables; n == 1
// traces everything.
func SampleTrace(e Event, n int) bool {
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return EventKey(e)%uint64(n) == 0
}
