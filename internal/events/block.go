package events

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Block is the zero-copy batch representation the hot path runs on: one
// event batch held as parallel columns (op, cookie, seq, record time) plus
// a single contiguous byte arena for every string field, with per-event
// span offsets into that arena. It is the *only* shape a batch takes from
// capture to delivery — the collector fills one directly from resolution,
// the wire carries its encoded image, the aggregator decodes it as views
// into the received payload (no string materialization), the store appends
// from it, and the consumer materializes Events lazily for delivery.
//
// Compared to []Event round-tripped through the codec, a Block removes the
// two per-event costs that dominated the aggregation tier: the ~112 B
// struct copy at every hop and the per-string allocations of decode
// (three allocations and ~500 B per event). A decoded Block allocates
// nothing per event — columns come from a pooled Block, the arena is the
// received payload itself — and re-encoding after sequence assignment is a
// single buffer clone with 8-byte seq patches instead of a full marshal.
//
// Ownership and mutation rules (the aliasing contract the pipeline relies
// on):
//
//   - A Block is single-writer while it is being built or holds assigned
//     sequence numbers that have not been published. All mutators
//     (AppendEvent, SetSeq, SetStamp, SetTrace, Intern, Wire) require
//     exclusive ownership.
//   - Publishing a Block by pointer (msgq's in-process fast path) freezes
//     it: every receiver must treat it — including its BatchTrace — as
//     immutable. Read accessors (Len, Op, Seq, Root, Event, EventKey,
//     Wire's cached buffer) are safe to use concurrently on a frozen Block.
//   - A Block decoded from a received payload aliases that payload as its
//     arena; the payload must not be modified afterwards (msgq payloads
//     never are).
type Block struct {
	ops     []Op
	cookies []uint32
	seqs    []uint64
	times   []int64 // record time, unix nanoseconds
	spans   []fieldSpans

	arena    []byte
	ownArena bool   // arena backing is this Block's own buffer (appendable)
	interned string // string copy of arena; "" until Intern

	stamp int64
	trace *BatchTrace

	// wire is the cached wire image; nil when the columns have diverged
	// structurally (append, stamp/trace change). seqPos records the byte
	// offset of each event's seq field inside wire, so a seq-only change
	// re-encodes as clone+patch instead of a full marshal.
	wire     []byte
	ownWire  bool
	seqPos   []int
	seqDirty bool
}

// strSpan is one string field as a [off, end) range into the arena.
type strSpan struct{ off, end uint32 }

// fieldSpans locates one event's four string fields in the arena.
type fieldSpans struct{ root, path, old, src strSpan }

// NewBlock returns an empty Block with room for evCap events and arenaCap
// arena bytes before growing.
func NewBlock(evCap, arenaCap int) *Block {
	return &Block{
		ops:     make([]Op, 0, evCap),
		cookies: make([]uint32, 0, evCap),
		seqs:    make([]uint64, 0, evCap),
		times:   make([]int64, 0, evCap),
		spans:   make([]fieldSpans, 0, evCap),
		seqPos:  make([]int, 0, evCap),
		arena:   make([]byte, 0, arenaCap),

		ownArena: true,
		ownWire:  true,
	}
}

// Reset empties the Block for reuse, dropping any foreign (aliased) arena
// or wire backing and retaining owned capacity.
func (b *Block) Reset() {
	b.ops = b.ops[:0]
	b.cookies = b.cookies[:0]
	b.seqs = b.seqs[:0]
	b.times = b.times[:0]
	b.spans = b.spans[:0]
	b.seqPos = b.seqPos[:0]
	if b.ownArena {
		b.arena = b.arena[:0]
	} else {
		b.arena = nil
		b.ownArena = true
	}
	if b.ownWire {
		b.wire = b.wire[:0]
	} else {
		b.wire = nil
		b.ownWire = true
	}
	b.interned = ""
	b.stamp = 0
	b.trace = nil
	b.seqDirty = false
}

// Len returns the number of events in the block.
func (b *Block) Len() int { return len(b.ops) }

// Stamp returns the batch capture stamp (0 = unstamped).
func (b *Block) Stamp() int64 { return b.stamp }

// SetStamp sets the batch capture stamp. The stamp rides in the wire
// header, so changing it invalidates the cached wire image.
func (b *Block) SetStamp(stamp int64) {
	if b.stamp == stamp {
		return
	}
	b.stamp = stamp
	b.invalidateWire()
}

// Trace returns the batch's span trace (nil = untraced).
func (b *Block) Trace() *BatchTrace { return b.trace }

// SetTrace attaches tr as the batch's span trace. The caller keeps
// appending spans to tr until the block is published; every append
// invalidates the wire image, so mark the block dirty once here and again
// via MarkTraceDirty after later span appends.
func (b *Block) SetTrace(tr *BatchTrace) {
	b.trace = tr
	b.invalidateWire()
}

// MarkTraceDirty invalidates the cached wire image after spans were
// appended to the attached trace in place.
func (b *Block) MarkTraceDirty() { b.invalidateWire() }

func (b *Block) invalidateWire() {
	if b.ownWire {
		b.wire = b.wire[:0]
	} else {
		b.wire = nil
		b.ownWire = true
	}
	b.seqPos = b.seqPos[:0]
	b.seqDirty = false
}

// AppendEvent appends one event, copying its strings into the arena. It
// requires an owned arena (a freshly built or Reset block, not one decoded
// from a payload).
func (b *Block) AppendEvent(e Event) error {
	if len(e.Root) > maxStr || len(e.Path) > maxStr || len(e.OldPath) > maxStr {
		return fmt.Errorf("events: path component exceeds %d bytes", maxStr)
	}
	if len(e.Source) > 255 {
		return fmt.Errorf("events: source exceeds 255 bytes")
	}
	if uint64(len(b.ops))+1 >= uint64(batchTraced) {
		return fmt.Errorf("events: batch of %d events exceeds wire limit", len(b.ops)+1)
	}
	if !b.ownArena {
		return fmt.Errorf("events: append into a decoded block")
	}
	var fs fieldSpans
	fs.root = b.appendStr(e.Root)
	fs.path = b.appendStr(e.Path)
	fs.old = b.appendStr(e.OldPath)
	fs.src = b.appendStr(e.Source)
	b.spans = append(b.spans, fs)
	b.ops = append(b.ops, e.Op)
	b.cookies = append(b.cookies, e.Cookie)
	b.seqs = append(b.seqs, e.Seq)
	b.times = append(b.times, e.Time.UnixNano())
	b.interned = ""
	b.invalidateWire()
	return nil
}

func (b *Block) appendStr(s string) strSpan {
	off := uint32(len(b.arena))
	b.arena = append(b.arena, s...)
	return strSpan{off: off, end: uint32(len(b.arena))}
}

// Intern makes one string copy of the whole arena so that per-event
// accessors return substrings of it instead of allocating. Call it once,
// while the block is still exclusively owned (e.g. on the store lane),
// before sharing the block with readers.
func (b *Block) Intern() {
	if b.interned == "" && len(b.arena) > 0 {
		b.interned = string(b.arena)
	}
}

// str materializes one span: a shared substring when the arena is
// interned, a fresh allocation otherwise.
func (b *Block) str(sp strSpan) string {
	if sp.off == sp.end {
		return ""
	}
	if b.interned != "" {
		return b.interned[sp.off:sp.end]
	}
	return string(b.arena[sp.off:sp.end])
}

// Per-event column accessors. i must be in [0, Len()).

// Op returns event i's operation mask.
func (b *Block) Op(i int) Op { return b.ops[i] }

// Cookie returns event i's rename-correlation cookie.
func (b *Block) Cookie(i int) uint32 { return b.cookies[i] }

// Seq returns event i's store sequence number.
func (b *Block) Seq(i int) uint64 { return b.seqs[i] }

// TimeNano returns event i's record time in unix nanoseconds.
func (b *Block) TimeNano(i int) int64 { return b.times[i] }

// Root returns event i's watch root.
func (b *Block) Root(i int) string { return b.str(b.spans[i].root) }

// Path returns event i's subject path.
func (b *Block) Path(i int) string { return b.str(b.spans[i].path) }

// OldPath returns event i's pre-rename path ("" when not a tracked move).
func (b *Block) OldPath(i int) string { return b.str(b.spans[i].old) }

// Source returns event i's producing DSI name.
func (b *Block) Source(i int) string { return b.str(b.spans[i].src) }

// PathBytes returns event i's subject path as raw arena bytes — the
// allocation-free view partition routing hashes.
func (b *Block) PathBytes(i int) []byte {
	sp := b.spans[i].path
	return b.arena[sp.off:sp.end]
}

// SetSeq assigns event i's sequence number (the store's job). The cached
// wire image stays valid — Wire patches the seq fields in place of a full
// re-encode.
func (b *Block) SetSeq(i int, seq uint64) {
	if b.seqs[i] == seq {
		return
	}
	b.seqs[i] = seq
	b.seqDirty = true
}

// Event materializes event i as a standalone Event value.
func (b *Block) Event(i int) Event {
	return Event{
		Root:    b.Root(i),
		Op:      b.ops[i],
		Path:    b.Path(i),
		OldPath: b.OldPath(i),
		Cookie:  b.cookies[i],
		Time:    time.Unix(0, b.times[i]),
		Seq:     b.seqs[i],
		Source:  b.Source(i),
	}
}

// AppendEventsTo materializes every event onto dst and returns the
// extended slice. With an interned arena this allocates only dst growth:
// all strings are substrings of the single interned copy.
func (b *Block) AppendEventsTo(dst []Event) []Event {
	for i := range b.ops {
		dst = append(dst, b.Event(i))
	}
	return dst
}

// EventKey hashes event i's wire-stable identity, byte-identical to
// EventKey(b.Event(i)) without materializing the event.
func (b *Block) EventKey(i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(sp strSpan) {
		for _, c := range b.arena[sp.off:sp.end] {
			h ^= uint64(c)
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	fs := b.spans[i]
	mix(fs.root)
	mix(fs.path)
	mix(fs.old)
	mix(fs.src)
	for _, v := range [...]uint64{uint64(b.ops[i]), uint64(b.cookies[i]), uint64(b.times[i])} {
		for j := 0; j < 8; j++ {
			h ^= (v >> (8 * j)) & 0xff
			h *= prime64
		}
	}
	return h
}

// AppendFrom appends event i of src to b. When b is empty (or already
// aliased to src's arena) the string bytes are shared, not copied — this
// is the path-hash split: P view blocks over one received payload. A block
// with its own arena copies the bytes instead.
func (b *Block) AppendFrom(src *Block, i int) {
	if len(b.ops) == 0 && len(b.arena) == 0 {
		// Adopt src's arena wholesale; span offsets stay valid.
		b.arena = src.arena
		b.ownArena = false
		b.interned = src.interned
	}
	if b.aliases(src.arena) {
		b.spans = append(b.spans, src.spans[i])
	} else {
		if !b.ownArena {
			// Aliased to a different arena: views are built over exactly
			// one source block, so this is a misuse, not a data shape.
			panic("events: Block.AppendFrom across different source arenas")
		}
		var fs fieldSpans
		cp := func(sp strSpan) strSpan {
			off := uint32(len(b.arena))
			b.arena = append(b.arena, src.arena[sp.off:sp.end]...)
			return strSpan{off: off, end: uint32(len(b.arena))}
		}
		s := src.spans[i]
		fs.root, fs.path, fs.old, fs.src = cp(s.root), cp(s.path), cp(s.old), cp(s.src)
		b.spans = append(b.spans, fs)
		b.interned = ""
	}
	b.ops = append(b.ops, src.ops[i])
	b.cookies = append(b.cookies, src.cookies[i])
	b.seqs = append(b.seqs, src.seqs[i])
	b.times = append(b.times, src.times[i])
	b.invalidateWire()
}

// aliases reports whether b.arena is the same backing as arena.
func (b *Block) aliases(arena []byte) bool {
	return len(b.arena) == len(arena) && (len(arena) == 0 || &b.arena[0] == &arena[0])
}

// CloneFrom makes b an exclusively mutable copy of a frozen src: columns
// and seq positions are copied (so SetSeq and clone+patch re-encoding work
// without touching src), while the arena, interned string, and cached wire
// image are shared read-only. The trace is deep-copied — the clone's
// owner appends spans to it. b must be empty (freshly built or Reset).
func (b *Block) CloneFrom(src *Block) {
	b.ops = append(b.ops[:0], src.ops...)
	b.cookies = append(b.cookies[:0], src.cookies...)
	b.seqs = append(b.seqs[:0], src.seqs...)
	b.times = append(b.times[:0], src.times...)
	b.spans = append(b.spans[:0], src.spans...)
	b.seqPos = append(b.seqPos[:0], src.seqPos...)
	b.arena = src.arena
	b.ownArena = false
	b.interned = src.interned
	b.stamp = src.stamp
	b.wire = src.wire
	b.ownWire = false
	b.seqDirty = src.seqDirty
	if src.trace != nil {
		b.trace = &BatchTrace{ID: src.trace.ID, Spans: append([]Span(nil), src.trace.Spans...)}
	} else {
		b.trace = nil
	}
}

// EncodeTo appends the block's wire encoding — byte-identical to
// MarshalBatchTraced(evs, stamp, trace) over the materialized events — to
// buf and returns the extended buffer. seqPos, when non-nil, receives the
// buffer offset of each event's seq field.
func (b *Block) EncodeTo(buf []byte, seqPos *[]int) []byte {
	header := uint32(len(b.ops))
	if b.stamp != 0 {
		header |= batchStamped
	}
	if b.trace != nil {
		header |= batchTraced
	}
	buf = binary.LittleEndian.AppendUint32(buf, header)
	if b.stamp != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.stamp))
	}
	if tr := b.trace; tr != nil {
		buf = binary.LittleEndian.AppendUint64(buf, tr.ID)
		buf = append(buf, byte(len(tr.Spans)))
		for _, sp := range tr.Spans {
			buf = append(buf, sp.Tier)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.TS))
			node := sp.Node
			if len(node) > maxNode {
				node = node[:maxNode]
			}
			buf = append(buf, byte(len(node)))
			buf = append(buf, node...)
		}
	}
	for i := range b.ops {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.ops[i]))
		buf = binary.LittleEndian.AppendUint32(buf, b.cookies[i])
		if seqPos != nil {
			*seqPos = append(*seqPos, len(buf))
		}
		buf = binary.LittleEndian.AppendUint64(buf, b.seqs[i])
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.times[i]))
		fs := b.spans[i]
		for _, sp := range [...]strSpan{fs.root, fs.path, fs.old} {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(sp.end-sp.off))
			buf = append(buf, b.arena[sp.off:sp.end]...)
		}
		buf = append(buf, byte(fs.src.end-fs.src.off))
		buf = append(buf, b.arena[fs.src.off:fs.src.end]...)
	}
	return buf
}

// Wire returns the block's wire image, caching it. Three speeds:
//
//   - clean cached image (a decoded block republished verbatim, or a
//     repeated publish): returned as-is, zero copies;
//   - seq-only divergence (the store assigned sequence numbers): the
//     cached image is cloned once and the 8-byte seq fields patched at
//     their recorded offsets — no per-event re-marshal;
//   - structural divergence (fresh build, appended trace spans, views):
//     full EncodeTo.
//
// The returned buffer is owned by the block; callers must not modify it.
func (b *Block) Wire() []byte {
	if len(b.wire) >= 4 { // any encoded batch carries at least its header

		if !b.seqDirty {
			return b.wire
		}
		if len(b.seqPos) == len(b.ops) {
			patched := append([]byte(nil), b.wire...)
			for i, pos := range b.seqPos {
				binary.LittleEndian.PutUint64(patched[pos:], b.seqs[i])
			}
			b.wire = patched
			b.ownWire = true
			b.seqDirty = false
			return b.wire
		}
	}
	b.seqPos = b.seqPos[:0]
	var buf []byte
	if b.ownWire {
		buf = b.wire[:0]
	}
	b.wire = b.EncodeTo(buf, &b.seqPos)
	b.ownWire = true
	b.seqDirty = false
	return b.wire
}

// DecodeBlock decodes a wire batch into a fresh Block. See DecodeBlockInto.
func DecodeBlock(payload []byte) (*Block, error) {
	b := &Block{ownArena: true, ownWire: true}
	if err := DecodeBlockInto(b, payload); err != nil {
		return nil, err
	}
	return b, nil
}

// DecodeBlockInto decodes a wire batch (any MarshalBatch* encoding) into
// b, which is Reset first. The decode is zero-copy: b's arena and cached
// wire image alias payload, which must not be modified afterwards. The
// accepted input grammar is exactly UnmarshalBatchTraced's, including its
// trailing-bytes check.
func DecodeBlockInto(b *Block, payload []byte) error {
	b.Reset()
	if len(payload) < 4 {
		return fmt.Errorf("events: short buffer decoding batch count")
	}
	header := binary.LittleEndian.Uint32(payload)
	pos := 4
	n := header &^ batchFlags
	if header&batchStamped != 0 {
		if len(payload) < pos+8 {
			return fmt.Errorf("events: short buffer decoding batch stamp")
		}
		b.stamp = int64(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
	}
	if header&batchTraced != 0 {
		if len(payload) < pos+9 {
			return fmt.Errorf("events: short buffer decoding batch trace")
		}
		tr := &BatchTrace{ID: binary.LittleEndian.Uint64(payload[pos:])}
		nspans := int(payload[pos+8])
		pos += 9
		tr.Spans = make([]Span, nspans)
		for i := range tr.Spans {
			if len(payload) < pos+10 {
				return fmt.Errorf("events: short buffer decoding %d trace spans", nspans)
			}
			sp := Span{Tier: payload[pos], TS: int64(binary.LittleEndian.Uint64(payload[pos+1:]))}
			nl := int(payload[pos+9])
			pos += 10
			if len(payload) < pos+nl {
				return fmt.Errorf("events: short buffer decoding trace span node")
			}
			sp.Node = string(payload[pos : pos+nl])
			pos += nl
			tr.Spans[i] = sp
		}
		b.trace = tr
	}
	for i := uint32(0); i < n; i++ {
		if len(payload)-pos < 24 {
			return fmt.Errorf("events: batch entry %d: short buffer (%d bytes) decoding header", i, len(payload)-pos)
		}
		b.ops = append(b.ops, Op(binary.LittleEndian.Uint32(payload[pos:])))
		b.cookies = append(b.cookies, binary.LittleEndian.Uint32(payload[pos+4:]))
		b.seqPos = append(b.seqPos, pos+8)
		b.seqs = append(b.seqs, binary.LittleEndian.Uint64(payload[pos+8:]))
		b.times = append(b.times, int64(binary.LittleEndian.Uint64(payload[pos+16:])))
		pos += 24
		var fs fieldSpans
		ok := true
		str16 := func() strSpan {
			if !ok || len(payload)-pos < 2 {
				ok = false
				return strSpan{}
			}
			l := int(binary.LittleEndian.Uint16(payload[pos:]))
			pos += 2
			if len(payload)-pos < l {
				ok = false
				return strSpan{}
			}
			sp := strSpan{off: uint32(pos), end: uint32(pos + l)}
			pos += l
			return sp
		}
		fs.root = str16()
		fs.path = str16()
		fs.old = str16()
		if ok && len(payload)-pos >= 1 {
			l := int(payload[pos])
			pos++
			if len(payload)-pos < l {
				ok = false
			} else {
				fs.src = strSpan{off: uint32(pos), end: uint32(pos + l)}
				pos += l
			}
		} else {
			ok = false
		}
		if !ok {
			return fmt.Errorf("events: batch entry %d: short buffer decoding strings", i)
		}
		b.spans = append(b.spans, fs)
	}
	if pos != len(payload) {
		return fmt.Errorf("events: %d trailing bytes after batch", len(payload)-pos)
	}
	b.arena = payload
	b.ownArena = false
	b.wire = payload
	b.ownWire = false
	return nil
}
