// Package telemetry is FSMonitor's unified observability layer: a
// lock-cheap metrics registry every tier mirrors its statistics into, an
// event-latency tracing vocabulary, and the introspection surfaces (JSON
// snapshots over HTTP, expvar, pprof, and a one-shot text dump).
//
// The paper evaluates FSMonitor through black-box numbers — event rates
// (Table IV), CPU and memory (Table VII), consumer lag (Fig. 9) — and
// related monitoring systems treat self-observability as a first-class
// requirement (MELT's live aggregated instrumentation, Robinhood's ingest
// lag). This package gives the reproduction the same substrate: one
// namespace ("fsmon.collector.mdt0.resolve_us", "fsmon.store.p0.append_us",
// "fsmon.consumer.lag_us", ...) that a running deployment exposes live,
// so every perf claim has an in-process measurement.
//
// Design constraints, in order:
//
//   - Disabled must cost nothing. Every handle type (*Counter, *Gauge,
//     *Histogram) and *Registry itself is nil-safe: a component holding a
//     nil registry calls the same code, and the nil check is a predicted
//     branch. The default everywhere is nil — telemetry is opt-in.
//   - Enabled must be lock-cheap. Hot-path updates are single atomic
//     operations on pre-resolved handles; the registry map is only
//     consulted at registration time, never per event. Most mirroring is
//     cheaper still: components register GaugeFuncs closing over their
//     existing atomic stat counters, so the hot path is not touched at
//     all — the cost is paid at snapshot time by whoever is looking.
//   - One namespace. Names are dotted, lower_snake per segment, rooted at
//     "fsmon.". Unit suffixes are part of the name (_us, _bytes, _rate).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with one implicit overflow
// bucket above the last bound. Updates are a few atomic adds; quantiles
// are estimated at snapshot time by linear interpolation within the
// covering bucket.
type Histogram struct {
	bounds  []int64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// newHistogram builds a histogram over ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Bucket search: the bound lists are small (tens of entries) and the
	// branchy linear scan beats binary search at that size; latency
	// observations also cluster in the low buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start in microseconds. Safe
// on a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Microseconds())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (0 on a nil receiver).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Overflow returns the number of observations above the last bucket bound
// (0 on a nil receiver). A non-zero overflow means the bucket layout is too
// narrow for the workload and quantile estimates near the tail lean on the
// observed max instead of interpolation.
func (h *Histogram) Overflow() uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[len(h.buckets)-1].Load()
}

// Buckets returns the histogram's upper bounds and per-bucket counts. The
// counts slice has one more entry than bounds: the final entry is the
// overflow bucket (observations above the last bound). Counts are loaded
// without a global lock, so a snapshot racing observations is approximate.
// Nil receivers return nil slices.
func (h *Histogram) Buckets() (bounds []int64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]int64, len(h.bounds))
	copy(bounds, h.bounds)
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return bounds, counts
}

// HistogramSnapshot summarizes a histogram at one instant. Overflow is the
// count of observations that landed above the last bucket bound — when it
// is non-zero, tail quantiles report the tracked max rather than an
// interpolated value, and the max/overflow pair says how hard the layout
// is being exceeded.
type HistogramSnapshot struct {
	Count    uint64  `json:"count"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Max      int64   `json:"max"`
	Overflow uint64  `json:"overflow"`
}

// Snapshot summarizes the histogram. Counts are read without a global
// lock, so a snapshot racing observations is approximate — fine for
// monitoring. Safe on a nil receiver (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Max: h.max.Load(), Overflow: counts[len(counts)-1]}
	if total == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(total)
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by interpolating
// linearly within the bucket containing the target rank. The overflow
// bucket reports the observed max (no upper bound to interpolate toward).
func (h *Histogram) quantile(counts []uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) {
			return float64(h.max.Load())
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		hi := float64(h.bounds[i])
		frac := (rank - prev) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return float64(h.max.Load())
}

// LatencyBuckets is the default bound set for latency histograms in
// microseconds: a 1-2-5 series from 1µs to 10s. Wide enough for anything
// from a cache probe to a stalled drain, fine enough that p50/p95/p99
// interpolation stays meaningful.
var LatencyBuckets = []int64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
}

// metric is one registered instrument.
type metric struct {
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is the unified metric namespace. All methods are safe for
// concurrent use and safe on a nil receiver (returning nil handles, which
// are themselves no-ops) — components thread a possibly-nil *Registry and
// never branch on it.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric

	// Second-story attachments (PR 5): the background sampler retaining
	// metric history, the watchdog health model over it, and the sampled
	// span-trace ring. All optional; accessors are nil-safe so components
	// thread only the *Registry and discover the rest.
	sampler atomic.Pointer[Sampler]
	health  atomic.Pointer[Health]
	traces  atomic.Pointer[TraceRing]
	traceN  atomic.Int64

	// Cluster observability plane (PR 9): the delivery-conservation
	// auditor and the federated cluster view. Optional and nil-safe like
	// the attachments above.
	audit      atomic.Pointer[Audit]
	federation atomic.Pointer[Federation]

	// Incident flight-recorder plane (PR 10): the adaptive trace-rate
	// boost (a denser 1-in-N applied while now < traceBoostUntil), the
	// bounded log ring, and the flight recorder itself.
	traceBoostN     atomic.Int64
	traceBoostUntil atomic.Int64 // unix nanos; 0 = no boost armed
	logring         atomic.Pointer[LogRing]
	flight          atomic.Pointer[FlightRecorder]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// get returns the named metric slot, creating it if absent.
func (r *Registry) get(name string) *metric {
	m, ok := r.metrics[name]
	if !ok {
		m = &metric{}
		r.metrics[name] = m
	}
	return m
}

// Counter returns the named counter, registering it on first use. Returns
// nil (a no-op handle) on a nil registry or if the name is already a
// different instrument type.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.counter == nil && m.gauge == nil && m.fn == nil && m.hist == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.counter == nil && m.gauge == nil && m.fn == nil && m.hist == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers fn as the named gauge, evaluated at snapshot time —
// the zero-hot-path-cost mirror for statistics a component already keeps.
// Re-registering a name replaces the function (a restarted component
// re-mirrors itself). No-op on a nil registry or nil fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	*m = metric{fn: fn}
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket bounds (nil bounds = LatencyBuckets). Subsequent calls
// return the existing histogram regardless of bounds, so components
// sharing a name share the instrument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.hist == nil && m.counter == nil && m.gauge == nil && m.fn == nil {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		m.hist = newHistogram(bounds)
	}
	return m.hist
}

// slots copies every registered metric slot under the lock, for walkers
// (Snapshot, the Prometheus renderer) that must evaluate GaugeFuncs and
// read histograms outside it. Slots are copied by value: GaugeFunc
// re-registration rewrites a slot in place under the lock, so field reads
// after unlock must not alias the live struct.
func (r *Registry) slots() (names []string, ms []metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names = make([]string, 0, len(r.metrics))
	ms = make([]metric, 0, len(r.metrics))
	for n, m := range r.metrics {
		names = append(names, n)
		ms = append(ms, *m)
	}
	return names, ms
}

// EnableTracing turns on deterministic 1-in-n span-trace sampling for
// every component attached to this registry and allocates the bounded
// ring completed traces land in (ringCap <= 0 selects DefaultTraceRing).
// n == 1 traces every event; n <= 0 disables. Collectors re-read the
// effective rate per batch, so a later BoostTracing densifies sampling
// on a live deployment. No-op on a nil registry.
func (r *Registry) EnableTracing(n, ringCap int) {
	if r == nil {
		return
	}
	r.traceN.Store(int64(n))
	if n > 0 && r.traces.Load() == nil {
		if ringCap <= 0 {
			ringCap = DefaultTraceRing
		}
		r.traces.CompareAndSwap(nil, NewTraceRing(ringCap))
	}
}

// TraceSampleN returns the effective trace sampling rate (1-in-N; 0 =
// tracing off): the base rate from EnableTracing, or the denser boosted
// rate while a BoostTracing window is active. Safe on a nil registry.
func (r *Registry) TraceSampleN() int {
	if r == nil {
		return 0
	}
	base := int(r.traceN.Load())
	if base <= 0 {
		return base
	}
	if until := r.traceBoostUntil.Load(); until != 0 && time.Now().UnixNano() < until {
		if b := int(r.traceBoostN.Load()); b > 0 && b < base {
			return b
		}
	}
	return base
}

// BoostTracing densifies span sampling to 1-in-n for the next window d —
// the adaptive-sampling half of the incident flight recorder: on a
// health transition the rate jumps (e.g. 1-in-1024 → 1-in-16) so the
// incident window holds dense end-to-end traces, then decays back to the
// base rate when the window expires (or earlier via ClearTraceBoost on
// recovery). The boost never arms a disabled tracer — with tracing off
// the wire stays untraced — and never loosens sampling below the base
// rate. Returns whether the boost armed. Safe on a nil registry.
func (r *Registry) BoostTracing(n int, d time.Duration) bool {
	if r == nil || n <= 0 || d <= 0 || r.traceN.Load() <= 0 {
		return false
	}
	r.traceBoostN.Store(int64(n))
	r.traceBoostUntil.Store(time.Now().Add(d).UnixNano())
	return true
}

// ClearTraceBoost ends an active sampling boost immediately — the
// decay-on-recovery path. Safe on a nil registry.
func (r *Registry) ClearTraceBoost() {
	if r == nil {
		return
	}
	r.traceBoostUntil.Store(0)
}

// TraceBoostActive reports whether a sampling boost is in effect right
// now. Safe on a nil registry.
func (r *Registry) TraceBoostActive() bool {
	if r == nil {
		return false
	}
	until := r.traceBoostUntil.Load()
	return until != 0 && time.Now().UnixNano() < until &&
		r.traceBoostN.Load() > 0 && r.traceN.Load() > 0
}

// Traces returns the completed-trace ring (nil until EnableTracing). Safe
// on a nil registry.
func (r *Registry) Traces() *TraceRing {
	if r == nil {
		return nil
	}
	return r.traces.Load()
}

// Sampler returns the attached background sampler (nil until
// StartSampler). Safe on a nil registry.
func (r *Registry) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	return r.sampler.Load()
}

// Health returns the attached health model (nil until SetHealth). Safe on
// a nil registry.
func (r *Registry) Health() *Health {
	if r == nil {
		return nil
	}
	return r.health.Load()
}

// SetHealth attaches the health model served at /healthz. No-op on a nil
// registry.
func (r *Registry) SetHealth(h *Health) {
	if r == nil {
		return
	}
	r.health.Store(h)
}

// Snapshot returns the registry's current state: counter and gauge values
// as float64, histograms as HistogramSnapshot. The map is freshly built
// and safe for the caller to retain. Nil registries snapshot empty.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	names, slots := r.slots()
	out := make(map[string]any, len(names))
	// GaugeFuncs run outside the registry lock: they may themselves take
	// component locks (stats snapshots), and holding ours across arbitrary
	// callbacks invites deadlock.
	for i, n := range names {
		m := slots[i]
		switch {
		case m.counter != nil:
			out[n] = float64(m.counter.Value())
		case m.gauge != nil:
			out[n] = float64(m.gauge.Value())
		case m.fn != nil:
			out[n] = m.fn()
		case m.hist != nil:
			out[n] = m.hist.Snapshot()
		}
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines — the
// one-shot dump surface (fsmon -status, exit dumps).
func (r *Registry) WriteText(w io.Writer) error {
	return WriteSnapshotText(w, r.Snapshot())
}

// WriteSnapshotText renders any snapshot map (local or fetched over HTTP)
// as sorted "name value" lines. Histograms render as one line with their
// summary fields.
func WriteSnapshotText(w io.Writer, snap map[string]any) error {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch v := snap[n].(type) {
		case HistogramSnapshot:
			_, err = fmt.Fprintf(w, "%s count=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%d overflow=%d\n",
				n, v.Count, v.Mean, v.P50, v.P95, v.P99, v.Max, v.Overflow)
		case map[string]any: // a histogram decoded from JSON
			_, err = fmt.Fprintf(w, "%s count=%v mean=%v p50=%v p95=%v p99=%v max=%v overflow=%v\n",
				n, v["count"], v["mean"], v["p50"], v["p95"], v["p99"], v["max"], v["overflow"])
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				_, err = fmt.Fprintf(w, "%s %d\n", n, int64(v))
			} else {
				_, err = fmt.Fprintf(w, "%s %g\n", n, v)
			}
		default:
			_, err = fmt.Fprintf(w, "%s %v\n", n, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stamp returns the current wall clock as a unix-nanosecond trace stamp —
// what collectors attach to published event batches at Changelog capture.
func Stamp() int64 { return time.Now().UnixNano() }

// SinceStampUS converts a capture stamp to elapsed microseconds now; it
// returns -1 for the zero stamp (untraced batch). Negative elapsed values
// (clock steps) clamp to 0 so histograms stay sane.
func SinceStampUS(stamp int64) int64 {
	if stamp == 0 {
		return -1
	}
	us := (time.Now().UnixNano() - stamp) / 1e3
	if us < 0 {
		return 0
	}
	return us
}
