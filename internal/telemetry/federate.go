package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federated telemetry: every cluster member periodically publishes a
// compact snapshot of its own registry slice on the cluster.telemetry
// msgq topic (piggybacking the membership heartbeat cadence), and any
// member or observer folds the snapshots it hears into a Federation — the
// merged cluster view served at /cluster/metrics (JSON, and Prometheus
// text with a "node" label) and /cluster/healthz (worst-of rollup across
// per-node watchdog verdicts, with dead-member detection by snapshot
// age). An operator of an N-node cluster gets one answer instead of N
// process-local half-truths.

// NodeSnapshot is one member's published telemetry frame: identity and
// membership state (epoch, owned partitions, peer-heartbeat age), the
// member's local watchdog verdict, and its registry slice flattened to
// scalars.
type NodeSnapshot struct {
	Node           string             `json:"node"`
	Epoch          uint64             `json:"epoch"`
	Partitions     []int              `json:"partitions,omitempty"`
	HeartbeatAgeMS float64            `json:"heartbeat_age_ms"`
	Status         Status             `json:"status"`
	Values         map[string]float64 `json:"values,omitempty"`
}

// fedEntry is one member's latest snapshot plus the local receipt time
// (dead-member detection uses the receiver's clock, immune to skew).
type fedEntry struct {
	snap NodeSnapshot
	seen time.Time
}

// Federation merges NodeSnapshots into the cluster view. All methods are
// safe for concurrent use and safe on a nil receiver.
type Federation struct {
	failAfter time.Duration

	mu    sync.Mutex
	nodes map[string]fedEntry
}

// NewFederation creates an empty federation. failAfter is the snapshot
// age after which a member is considered dead (<= 0 selects 4× the
// default heartbeat interval, matching the membership failure detector).
func NewFederation(failAfter time.Duration) *Federation {
	if failAfter <= 0 {
		failAfter = 4 * 250 * time.Millisecond
	}
	return &Federation{failAfter: failAfter, nodes: make(map[string]fedEntry)}
}

// Update folds one member snapshot into the view. Safe on nil (no-op).
func (f *Federation) Update(s NodeSnapshot) {
	if f == nil || s.Node == "" {
		return
	}
	f.mu.Lock()
	f.nodes[s.Node] = fedEntry{snap: s, seen: time.Now()}
	f.mu.Unlock()
}

// UpdateJSON decodes a published snapshot frame and folds it in — the
// receive side of the cluster.telemetry topic. Malformed frames are
// dropped. Safe on nil.
func (f *Federation) UpdateJSON(payload []byte) {
	if f == nil {
		return
	}
	var s NodeSnapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return
	}
	f.Update(s)
}

// Remove forgets a member — the graceful-leave path. A member that dies
// silently is NOT removed: its snapshot ages past failAfter and the
// rollup reports it dead until it rejoins. Safe on nil.
func (f *Federation) Remove(node string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
}

// FailAfter returns the dead-member snapshot-age threshold (0 on nil).
func (f *Federation) FailAfter() time.Duration {
	if f == nil {
		return 0
	}
	return f.failAfter
}

// ClusterMember is one member's state in the merged view.
type ClusterMember struct {
	Node           string  `json:"node"`
	Epoch          uint64  `json:"epoch"`
	Partitions     []int   `json:"partitions,omitempty"`
	HeartbeatAgeMS float64 `json:"heartbeat_age_ms"`
	Status         Status  `json:"status"`
	// SnapshotAgeMS is how long ago this member's last snapshot arrived
	// (by the serving process's clock). Dead is true once it exceeds the
	// federation's failAfter — the member stopped publishing without a
	// graceful leave.
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
	Dead          bool    `json:"dead,omitempty"`
}

// ClusterReport is the merged cluster health view served at
// /cluster/healthz: the worst-of rollup across member verdicts (a dead
// member counts as stalled, so the endpoint flips to 503 within one
// failure-detector window of a silent death) plus every member's state.
type ClusterReport struct {
	Status    Status          `json:"status"`
	Members   []ClusterMember `json:"members"`
	SampledAt time.Time       `json:"sampled_at"`
}

// Report computes the merged view. Safe on nil (empty, ok report).
func (f *Federation) Report() ClusterReport {
	rep := ClusterReport{SampledAt: time.Now()}
	if f == nil {
		return rep
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.nodes {
		m := ClusterMember{
			Node:           e.snap.Node,
			Epoch:          e.snap.Epoch,
			Partitions:     e.snap.Partitions,
			HeartbeatAgeMS: e.snap.HeartbeatAgeMS,
			Status:         e.snap.Status,
			SnapshotAgeMS:  float64(time.Since(e.seen).Milliseconds()),
		}
		if time.Since(e.seen) > f.failAfter {
			m.Dead = true
			m.Status = StatusStalled
		}
		if m.Status > rep.Status {
			rep.Status = m.Status
		}
		rep.Members = append(rep.Members, m)
	}
	sort.Slice(rep.Members, func(i, j int) bool { return rep.Members[i].Node < rep.Members[j].Node })
	return rep
}

// Snapshots returns every member's latest snapshot, sorted by node ID.
// Safe on nil (nil slice).
func (f *Federation) Snapshots() []NodeSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]NodeSnapshot, 0, len(f.nodes))
	for _, e := range f.nodes {
		out = append(out, e.snap)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// clusterMetrics is the /cluster/metrics JSON document: the merged member
// states with their metric slices, plus the serving process's local
// conservation-audit snapshot when one is attached.
type clusterMetrics struct {
	Status    Status         `json:"status"`
	Nodes     []NodeSnapshot `json:"nodes"`
	Audit     *AuditSnapshot `json:"audit,omitempty"`
	SampledAt time.Time      `json:"sampled_at"`
}

// WriteClusterMetrics renders the merged view as JSON (the
// /cluster/metrics document). aud may be nil. Safe on a nil federation
// (empty document).
func (f *Federation) WriteClusterMetrics(w io.Writer, aud *Audit) error {
	doc := clusterMetrics{
		Status:    f.Report().Status,
		Nodes:     f.Snapshots(),
		SampledAt: time.Now(),
	}
	if doc.Nodes == nil {
		doc.Nodes = []NodeSnapshot{}
	}
	if aud != nil {
		s := aud.Snapshot()
		doc.Audit = &s
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WritePrometheus renders every member's metric slice in the Prometheus
// text exposition format with a "node" label, plus per-member
// fsmon_cluster_member_* meta gauges (heartbeat age, snapshot age,
// up/dead, status) so a scrape stack sees the whole cluster through one
// endpoint. Safe on nil (renders nothing).
func (f *Federation) WritePrometheus(w io.Writer) error {
	if f == nil {
		return nil
	}
	rep := f.Report()
	snaps := f.Snapshots()
	// Meta families first, one sample per member.
	if len(rep.Members) > 0 {
		meta := []struct {
			name string
			val  func(ClusterMember) float64
		}{
			{"fsmon_cluster_member_up", func(m ClusterMember) float64 {
				if m.Dead {
					return 0
				}
				return 1
			}},
			{"fsmon_cluster_member_status", func(m ClusterMember) float64 { return float64(m.Status) }},
			{"fsmon_cluster_member_heartbeat_age_ms", func(m ClusterMember) float64 { return m.HeartbeatAgeMS }},
			{"fsmon_cluster_member_snapshot_age_ms", func(m ClusterMember) float64 { return m.SnapshotAgeMS }},
			{"fsmon_cluster_member_partitions_owned", func(m ClusterMember) float64 { return float64(len(m.Partitions)) }},
		}
		for _, fam := range meta {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam.name); err != nil {
				return err
			}
			for _, m := range rep.Members {
				if _, err := fmt.Fprintf(w, "%s{node=%q} %s\n", fam.name, m.Node, promFloat(fam.val(m))); err != nil {
					return err
				}
			}
		}
	}
	// Then each member's metric slice, node-labeled, in sorted name order
	// per member (members are already sorted).
	for _, s := range snaps {
		names := make([]string, 0, len(s.Values))
		for n := range s.Values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "%s{node=%q} %s\n", MangleName(n), s.Node, promFloat(s.Values[n])); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildNodeSnapshot assembles one member's publishable frame: membership
// state from the caller plus the member's own registry slice — every
// metric under "fsmon.cluster.<node>." flattened to scalars. Restricting
// the slice to the member's own namespace keeps in-process multi-node
// deployments (which share one registry) from publishing each other's
// numbers N times. The local watchdog verdict rides along when a health
// model is attached; without one the member reports ok.
func BuildNodeSnapshot(reg *Registry, node string, epoch uint64, parts []int, hbAge time.Duration) NodeSnapshot {
	s := NodeSnapshot{
		Node:           node,
		Epoch:          epoch,
		Partitions:     parts,
		HeartbeatAgeMS: float64(hbAge.Milliseconds()),
	}
	if reg == nil {
		return s
	}
	prefix := "fsmon.cluster." + node + "."
	flat := flattenSnapshot(reg.Snapshot())
	vals := make(map[string]float64)
	for name, v := range flat {
		if strings.HasPrefix(name, prefix) {
			vals[name] = v
		}
	}
	if len(vals) > 0 {
		s.Values = vals
	}
	if h := reg.Health(); h != nil {
		s.Status = h.Evaluate().Status
	}
	return s
}

// EnableFederation attaches a federation to the registry (served at
// /cluster/metrics and /cluster/healthz by a telemetry Server over this
// registry). failAfter is the dead-member snapshot-age threshold.
// Repeated calls return the existing federation; nil registries return
// nil.
func (r *Registry) EnableFederation(failAfter time.Duration) *Federation {
	if r == nil {
		return nil
	}
	if f := r.federation.Load(); f != nil {
		return f
	}
	f := NewFederation(failAfter)
	if !r.federation.CompareAndSwap(nil, f) {
		return r.federation.Load()
	}
	return f
}

// Federation returns the attached federation (nil until
// EnableFederation). Safe on a nil registry.
func (r *Registry) Federation() *Federation {
	if r == nil {
		return nil
	}
	return r.federation.Load()
}
