package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTraceRingNil(t *testing.T) {
	var r *TraceRing
	r.Add(Trace{ID: 1})
	if r.Len() != 0 || r.Added() != 0 || r.Snapshot() != nil {
		t.Error("nil ring views not empty")
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := NewTraceRing(4)
	for i := uint64(1); i <= 10; i++ {
		r.Add(Trace{ID: i})
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Added() != 10 {
		t.Errorf("Added = %d, want 10", r.Added())
	}
	snap := r.Snapshot()
	for i, tr := range snap {
		if want := uint64(7 + i); tr.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (oldest first)", i, tr.ID, want)
		}
	}
}

func TestTraceRingConcurrency(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 500; j++ {
				r.Add(Trace{ID: base<<32 | j})
				_ = r.Snapshot()
			}
		}(uint64(i))
	}
	wg.Wait()
	if r.Added() != 2000 {
		t.Errorf("Added = %d, want 2000", r.Added())
	}
}

// TestWriteChromeTrace checks the trace_event document shape: valid JSON,
// one "X" event per span, durations spanning to the next hop, stable
// pid/tid rows.
func TestWriteChromeTrace(t *testing.T) {
	traces := []Trace{
		{ID: 42, Spans: []TraceSpan{
			{Tier: "collect", TS: 1_000_000},
			{Tier: "resolve", TS: 3_000_000},
			{Tier: "deliver", TS: 10_000_000},
		}},
		{ID: 43, Spans: []TraceSpan{{Tier: "collect", TS: 5_000_000}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// One process_name metadata event (the node-less "pipeline" process)
	// precedes the 4 span events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("%d events, want 5", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Name != "process_name" || meta.Ph != "M" || meta.PID != 1 || meta.Args["name"] != "pipeline" {
		t.Errorf("metadata event = %+v", meta)
	}
	doc.TraceEvents = doc.TraceEvents[1:]
	first := doc.TraceEvents[0]
	if first.Name != "collect" || first.Ph != "X" || first.Cat != "fsmon" {
		t.Errorf("first event = %+v", first)
	}
	if first.TS != 1000 { // 1ms in µs
		t.Errorf("first.TS = %v µs, want 1000", first.TS)
	}
	if first.Dur != 2000 { // until resolve at 3ms
		t.Errorf("first.Dur = %v µs, want 2000", first.Dur)
	}
	if doc.TraceEvents[2].Dur != 1 { // final span: visible sliver
		t.Errorf("terminal span Dur = %v, want 1", doc.TraceEvents[2].Dur)
	}
	if doc.TraceEvents[0].TID != 1 || doc.TraceEvents[3].TID != 2 {
		t.Error("traces not separated into rows by tid")
	}
	if id, ok := doc.TraceEvents[0].Args["trace_id"].(float64); !ok || id != 42 {
		t.Errorf("args.trace_id = %v", doc.TraceEvents[0].Args["trace_id"])
	}

	// Empty input still yields a loadable document with an empty array,
	// not null.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimSpace(raw["traceEvents"])) == "null" {
		t.Error("empty trace dump encodes traceEvents as null")
	}
}

func TestRegistryEnableTracing(t *testing.T) {
	var nilReg *Registry
	nilReg.EnableTracing(8, 0)
	if nilReg.TraceSampleN() != 0 || nilReg.Traces() != nil {
		t.Error("nil registry tracing views not empty")
	}

	reg := NewRegistry()
	if reg.TraceSampleN() != 0 || reg.Traces() != nil {
		t.Error("tracing enabled before EnableTracing")
	}
	reg.EnableTracing(1000, 16)
	if reg.TraceSampleN() != 1000 {
		t.Errorf("TraceSampleN = %d", reg.TraceSampleN())
	}
	ring := reg.Traces()
	if ring == nil {
		t.Fatal("no ring after EnableTracing")
	}
	// Re-enabling adjusts the rate but keeps the ring (and its contents).
	ring.Add(Trace{ID: 9})
	reg.EnableTracing(50, 0)
	if reg.TraceSampleN() != 50 {
		t.Errorf("TraceSampleN after re-enable = %d", reg.TraceSampleN())
	}
	if reg.Traces() != ring || ring.Len() != 1 {
		t.Error("re-enable replaced the ring")
	}
}

func TestTraceRingAsFlightRecorder(t *testing.T) {
	// The ring keeps the newest traces under sustained load — the flight
	// recorder property /traces depends on.
	r := NewTraceRing(8)
	for i := 0; i < 100; i++ {
		r.Add(Trace{ID: uint64(i), Spans: []TraceSpan{{Tier: "collect", TS: int64(i)}}})
	}
	snap := r.Snapshot()
	if len(snap) != 8 || snap[0].ID != 92 || snap[7].ID != 99 {
		ids := make([]string, len(snap))
		for i, tr := range snap {
			ids[i] = fmt.Sprint(tr.ID)
		}
		t.Errorf("retained IDs = %v, want 92..99", ids)
	}
}
