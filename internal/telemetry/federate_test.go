package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestFederationNil(t *testing.T) {
	var f *Federation
	f.Update(NodeSnapshot{Node: "n0"})
	f.UpdateJSON([]byte(`{"node":"n0"}`))
	f.Remove("n0")
	if rep := f.Report(); rep.Status != StatusOK || len(rep.Members) != 0 {
		t.Errorf("nil federation report = %+v", rep)
	}
	if f.Snapshots() != nil || f.FailAfter() != 0 {
		t.Error("nil federation not inert")
	}
	var buf bytes.Buffer
	if err := f.WriteClusterMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestFederationReport: the rollup is worst-of across member verdicts,
// members sort by node ID, and a malformed frame is dropped.
func TestFederationReport(t *testing.T) {
	f := NewFederation(time.Minute)
	f.Update(NodeSnapshot{Node: "n1", Epoch: 3, Partitions: []int{1}, Status: StatusDegraded})
	frame, _ := json.Marshal(NodeSnapshot{Node: "n0", Epoch: 3, Partitions: []int{0}, HeartbeatAgeMS: 12})
	f.UpdateJSON(frame)
	f.UpdateJSON([]byte("not json"))

	rep := f.Report()
	if len(rep.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(rep.Members))
	}
	if rep.Members[0].Node != "n0" || rep.Members[1].Node != "n1" {
		t.Errorf("members not sorted: %s, %s", rep.Members[0].Node, rep.Members[1].Node)
	}
	if rep.Status != StatusDegraded {
		t.Errorf("rollup = %v, want degraded (worst-of)", rep.Status)
	}
	if rep.Members[0].Dead || rep.Members[1].Dead {
		t.Error("fresh members reported dead")
	}
	if rep.Members[0].HeartbeatAgeMS != 12 {
		t.Errorf("frame fields lost: %+v", rep.Members[0])
	}
}

// TestFederationDeadMember: a member that stops publishing without a
// graceful leave ages past failAfter and flips the rollup to stalled; a
// fresh snapshot (rejoin) revives it. A graceful leave removes the member
// entirely instead.
func TestFederationDeadMember(t *testing.T) {
	f := NewFederation(30 * time.Millisecond)
	f.Update(NodeSnapshot{Node: "n0"})
	f.Update(NodeSnapshot{Node: "n1"})

	time.Sleep(60 * time.Millisecond) // both silent past failAfter
	f.Update(NodeSnapshot{Node: "n0"})
	rep := f.Report()
	if rep.Status != StatusStalled {
		t.Fatalf("silent member rollup = %v, want stalled", rep.Status)
	}
	for _, m := range rep.Members {
		wantDead := m.Node == "n1"
		if m.Dead != wantDead {
			t.Errorf("member %s dead=%v, want %v", m.Node, m.Dead, wantDead)
		}
		if wantDead && m.Status != StatusStalled {
			t.Errorf("dead member status = %v", m.Status)
		}
	}

	f.Update(NodeSnapshot{Node: "n1"}) // rejoin: fresh frame revives it
	if rep := f.Report(); rep.Status != StatusOK {
		t.Fatalf("rejoined member rollup = %v: %+v", rep.Status, rep.Members)
	}

	f.Remove("n1") // graceful leave: gone, not dead
	rep = f.Report()
	if len(rep.Members) != 1 || rep.Status != StatusOK {
		t.Fatalf("after leave: %+v", rep)
	}
}

// TestBuildNodeSnapshot: a member publishes only its own registry slice —
// in-process deployments share one registry and must not republish each
// other's numbers.
func TestBuildNodeSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("fsmon.cluster.n0.heartbeat_age_ms").Set(7)
	reg.Gauge("fsmon.cluster.n1.heartbeat_age_ms").Set(9)
	reg.Counter("fsmon.aggregator.published").Add(3)

	s := BuildNodeSnapshot(reg, "n0", 5, []int{0, 2}, 7*time.Millisecond)
	if s.Node != "n0" || s.Epoch != 5 || len(s.Partitions) != 2 || s.HeartbeatAgeMS != 7 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if len(s.Values) != 1 || s.Values["fsmon.cluster.n0.heartbeat_age_ms"] != 7 {
		t.Fatalf("snapshot values not filtered to own slice: %v", s.Values)
	}
	// Without a health model the member reports ok.
	if s.Status != StatusOK {
		t.Errorf("status = %v", s.Status)
	}
}

// promLine matches one Prometheus text sample with a node label:
// name{node="..."} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*\{node="[^"]+"\} [0-9.eE+-]+$`)

// TestWritePrometheus: the federated exposition parses line by line, every
// sample carries the node label, and both members' slices appear.
func TestWritePrometheus(t *testing.T) {
	f := NewFederation(time.Minute)
	f.Update(NodeSnapshot{Node: "n0", Values: map[string]float64{"fsmon.cluster.n0.stored": 42}})
	f.Update(NodeSnapshot{Node: "n1", Partitions: []int{0, 1}})

	var buf bytes.Buffer
	if err := f.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := 0
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}
	for _, want := range []string{
		`fsmon_cluster_member_up{node="n0"} 1`,
		`fsmon_cluster_member_partitions_owned{node="n1"} 2`,
		`fsmon_cluster_n0_stored{node="n0"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}

// TestClusterEndpoints: without a federation the /cluster/* surface
// answers 404 (not clustered must not read as an empty healthy cluster);
// with one it serves the merged JSON view, the node-labeled Prometheus
// text, and the worst-of rollup that flips 503 on a dead member.
func TestClusterEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for _, path := range []string{"/cluster/metrics", "/cluster/metrics/prom", "/cluster/healthz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without federation = %d, want 404", path, resp.StatusCode)
		}
	}

	fed := reg.EnableFederation(40 * time.Millisecond)
	aud := reg.EnableAudit(1)
	aud.Captured(3)
	fed.Update(NodeSnapshot{Node: "n0", Values: map[string]float64{"fsmon.cluster.n0.stored": 1}})
	fed.Update(NodeSnapshot{Node: "n1"})

	var doc struct {
		Status Status         `json:"status"`
		Nodes  []NodeSnapshot `json:"nodes"`
		Audit  *AuditSnapshot `json:"audit"`
	}
	if err := fetchJSON(base+"/cluster/metrics", &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 2 || doc.Status != StatusOK {
		t.Fatalf("/cluster/metrics = %+v", doc)
	}
	if doc.Audit == nil || doc.Audit.Captured != 3 {
		t.Fatalf("/cluster/metrics audit = %+v", doc.Audit)
	}

	resp, err := http.Get(base + "/cluster/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(prom.String(), `fsmon_cluster_member_up{node="n1"} 1`) {
		t.Errorf("/cluster/metrics/prom lacks member sample:\n%s", prom.String())
	}

	rep, ok, err := FetchClusterHealth(base + "/cluster/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || rep.Status != StatusOK || len(rep.Members) != 2 {
		t.Fatalf("healthy rollup: ok=%v %+v", ok, rep)
	}

	// n1 falls silent; within one failure-detector window the rollup 503s.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fed.Update(NodeSnapshot{Node: "n0"}) // n0 keeps beating
		rep, ok, err = FetchClusterHealth(base + "/cluster/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead member never flipped /cluster/healthz to 503")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Status != StatusStalled {
		t.Fatalf("dead-member rollup = %v", rep.Status)
	}
}
