package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil handles: %v %v %v", c, g, h)
	}
	// All no-ops, none may panic.
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(7)
	h.ObserveSince(time.Now())
	r.GaugeFunc("f", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles reported non-zero values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not zero")
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot not empty: %v", snap)
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fsmon.test.count")
	c.Add(3)
	if c2 := r.Counter("fsmon.test.count"); c2 != c {
		t.Fatal("second Counter call returned a different handle")
	}
	g := r.Gauge("fsmon.test.gauge")
	g.Set(-7)
	h := r.Histogram("fsmon.test.us", nil)
	h.Observe(10)
	r.GaugeFunc("fsmon.test.fn", func() float64 { return 42 })

	snap := r.Snapshot()
	if snap["fsmon.test.count"] != float64(3) {
		t.Errorf("counter = %v, want 3", snap["fsmon.test.count"])
	}
	if snap["fsmon.test.gauge"] != float64(-7) {
		t.Errorf("gauge = %v, want -7", snap["fsmon.test.gauge"])
	}
	if snap["fsmon.test.fn"] != float64(42) {
		t.Errorf("gaugefunc = %v, want 42", snap["fsmon.test.fn"])
	}
	hs, ok := snap["fsmon.test.us"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Errorf("histogram = %#v, want count 1", snap["fsmon.test.us"])
	}
}

func TestRegistryTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("name").Inc()
	// Requesting the same name as a different instrument yields a nil
	// (no-op) handle rather than corrupting the registered one.
	if g := r.Gauge("name"); g != nil {
		t.Fatal("gauge under a counter name should be nil")
	}
	if h := r.Histogram("name", nil); h != nil {
		t.Fatal("histogram under a counter name should be nil")
	}
	if r.Counter("name").Value() != 1 {
		t.Fatal("original counter lost")
	}
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", func() float64 { return 1 })
	r.GaugeFunc("x", func() float64 { return 2 })
	if v := r.Snapshot()["x"]; v != float64(2) {
		t.Fatalf("x = %v, want 2 (re-registration must replace)", v)
	}
}

// TestRegistryConcurrency drives registration, updates, and snapshots from
// many goroutines at once; run with -race this validates the locking
// discipline (including GaugeFuncs evaluated outside the registry lock).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("shared.count")
			h := r.Histogram("shared.us", nil)
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(int64(i % 500))
				r.Gauge("shared.gauge").Set(int64(i))
				r.GaugeFunc("shared.fn", func() float64 { return float64(w) })
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	if got := r.Counter("shared.count").Value(); got != 8*2000 {
		t.Fatalf("count = %d, want %d", got, 8*2000)
	}
	if got := r.Histogram("shared.us", nil).Count(); got != 8*2000 {
		t.Fatalf("histogram count = %d, want %d", got, 8*2000)
	}
}

// TestHistogramQuantileAccuracy uses decade bounds with a uniform
// population so every quantile is exactly interpolable: 1000 observations
// of 1..1000 against bounds 100,200,...,1000 put 100 in each bucket, and
// linear interpolation recovers the true quantiles exactly.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := []int64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	h := newHistogram(bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := 500.5; s.Mean != want {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 500},
		{"p95", s.P95, 950},
		{"p99", s.P99, 990},
	} {
		if diff := tc.got - tc.want; diff < -1 || diff > 1 {
			t.Errorf("%s = %v, want %v ±1", tc.name, tc.got, tc.want)
		}
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := newHistogram([]int64{10, 20})
	h.Observe(5)
	h.Observe(1_000_000)
	s := h.Snapshot()
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d", s.Max)
	}
	// The overflow bucket has no upper bound; quantiles that land there
	// report the observed max.
	if s.P99 != 1_000_000 {
		t.Fatalf("p99 = %v, want observed max", s.P99)
	}
}

func TestWriteSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(12)
	r.Gauge("a.gauge").Set(3)
	r.Histogram("c.us", nil).Observe(50)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Sorted by name, integers rendered without a decimal point.
	if lines[0] != "a.gauge 3" || lines[1] != "b.count 12" {
		t.Errorf("unexpected scalar lines: %q, %q", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[2], "c.us count=1 ") || !strings.Contains(lines[2], "max=50") {
		t.Errorf("unexpected histogram line: %q", lines[2])
	}
}

func TestStampSince(t *testing.T) {
	if us := SinceStampUS(0); us != -1 {
		t.Fatalf("zero stamp → %d, want -1 (untraced)", us)
	}
	if us := SinceStampUS(Stamp()); us < 0 {
		t.Fatalf("fresh stamp → %d, want >= 0", us)
	}
	if us := SinceStampUS(time.Now().Add(time.Hour).UnixNano()); us != 0 {
		t.Fatalf("future stamp → %d, want clamp to 0", us)
	}
}
