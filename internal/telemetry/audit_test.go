package telemetry

import (
	"strings"
	"testing"
)

func TestAuditNil(t *testing.T) {
	var a *Audit
	a.Captured(10)
	a.Published(10)
	a.Stored(0, 10)
	a.Republished(0, 10)
	a.Delivered(0, 10)
	a.StoreSeq(0, 1, 10, 1)
	a.DeliverSeq(0, 1, 1)
	if a.Parts() != 0 || a.Violations() != 0 || a.Balance(1) != 0 {
		t.Error("nil audit not inert")
	}
	if s := a.Snapshot(); s.Captured != 0 || s.Violations != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

// TestAuditBalance: a quiesced flow where every tier saw every event
// balances to zero; any tier missing events shows up as the worst leg.
func TestAuditBalance(t *testing.T) {
	a := NewAudit(2)
	a.Captured(100)
	a.Published(100)
	a.Stored(0, 60)
	a.Stored(1, 40)
	a.Republished(0, 60)
	a.Republished(1, 40)
	a.Delivered(0, 60)
	a.Delivered(1, 40)
	if b := a.Balance(1); b != 0 {
		t.Fatalf("steady state balance = %d, want 0", b)
	}

	// A second consumer doubles the delivered leg; Balance(2) normalizes.
	a.Delivered(0, 60)
	a.Delivered(1, 40)
	if b := a.Balance(2); b != 0 {
		t.Fatalf("two-consumer balance = %d, want 0", b)
	}
	if b := a.Balance(1); b != 100 {
		t.Fatalf("unnormalized balance = %d, want 100", b)
	}

	// Ten events stuck between publish and store.
	a.Published(10)
	if b := a.Balance(2); b != 10 {
		t.Fatalf("in-flight imbalance = %d, want 10", b)
	}
}

// TestAuditStoreSeq drives the store-lane detector through the full
// protocol: first append sets the high water, contiguous strides are
// clean, a skipped stride is a gap, a re-appended seq is a dup, and a
// fully replayed range leaves the high water alone.
func TestAuditStoreSeq(t *testing.T) {
	a := NewAudit(2)
	const stride = 2 // two partitions: lane 1 carries seqs 1,3,5,...

	a.StoreSeq(1, 1, 3, stride) // seqs 1,3,5 — first append, sets high water
	a.StoreSeq(1, 7, 1, stride) // contiguous
	if v := a.Violations(); v != 0 {
		t.Fatalf("clean lane reported %d violations", v)
	}

	a.StoreSeq(1, 13, 1, stride) // skipped 9 and 11: gap of 2 events
	s := a.Snapshot()
	if s.Gaps != 2 || s.Violations != 1 {
		t.Fatalf("gap detection: gaps=%d violations=%d, want 2/1", s.Gaps, s.Violations)
	}

	a.StoreSeq(1, 13, 1, stride) // replayed range: dup, high water unchanged
	s = a.Snapshot()
	if s.Dups != 1 || s.Violations != 2 {
		t.Fatalf("dup detection: dups=%d violations=%d, want 1/2", s.Dups, s.Violations)
	}
	a.StoreSeq(1, 15, 1, stride) // lane continues cleanly after the replay
	if v := a.Violations(); v != 2 {
		t.Fatalf("post-replay append flagged: violations=%d", v)
	}

	// The other lane is independent and still on its first append.
	a.StoreSeq(0, 2, 1, stride)
	a.StoreSeq(0, 4, 1, stride)
	if v := a.Violations(); v != 2 {
		t.Fatalf("independent lane leaked violations: %d", v)
	}
}

// TestAuditDeliverSeq: the consumer-side detector counts only forward
// jumps — at-or-below-cursor replays are the dedup working as designed.
func TestAuditDeliverSeq(t *testing.T) {
	a := NewAudit(1)
	a.DeliverSeq(0, 1, 1)
	a.DeliverSeq(0, 2, 1)
	a.DeliverSeq(0, 2, 1) // recovery replay: not a violation
	a.DeliverSeq(0, 1, 1)
	if v := a.Violations(); v != 0 {
		t.Fatalf("replay flagged: %d violations", v)
	}
	a.DeliverSeq(0, 6, 1) // 3,4,5 never arrived
	s := a.Snapshot()
	if s.Gaps != 3 || s.Violations != 1 {
		t.Fatalf("deliver gap: gaps=%d violations=%d, want 3/1", s.Gaps, s.Violations)
	}
}

// TestEnableAudit: the registry attach is idempotent and exports the
// fsmon.audit.* gauge surface the watchdog and the smoke gate read.
func TestEnableAudit(t *testing.T) {
	reg := NewRegistry()
	a := reg.EnableAudit(2)
	if a == nil {
		t.Fatal("EnableAudit returned nil")
	}
	if reg.EnableAudit(8) != a {
		t.Error("second EnableAudit returned a different auditor")
	}
	if reg.Audit() != a {
		t.Error("Audit() does not return the attached auditor")
	}
	a.Captured(5)
	a.Stored(1, 3)
	flat := flattenSnapshot(reg.Snapshot())
	if flat["fsmon.audit.captured"] != 5 {
		t.Errorf("fsmon.audit.captured = %v", flat["fsmon.audit.captured"])
	}
	if flat["fsmon.audit.stored.p1"] != 3 {
		t.Errorf("fsmon.audit.stored.p1 = %v", flat["fsmon.audit.stored.p1"])
	}
	var nilReg *Registry
	if nilReg.EnableAudit(1) != nil || nilReg.Audit() != nil {
		t.Error("nil registry returned a live auditor")
	}
}

// TestConservationViolationRule is the acceptance check for the watchdog
// wiring: an injected sequence gap trips the conservation-violation rule
// within one sampler window, and the finding latches.
func TestConservationViolationRule(t *testing.T) {
	reg := NewRegistry()
	a := reg.EnableAudit(1)
	s := startStoppedSampler(t, reg, 16)
	h := NewHealth(s, HealthOptions{})
	defer h.Close()

	a.StoreSeq(0, 1, 4, 1) // seqs 1..4
	s.SampleNow()
	if rep := h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("clean audit reported %v: %+v", rep.Status, rep.Tiers)
	}

	a.StoreSeq(0, 7, 1, 1) // 5 and 6 lost — the injected gap
	s.SampleNow()          // one window later the rule must see it
	rep := h.Evaluate()
	if rep.Status != StatusDegraded {
		t.Fatalf("injected gap reported %v: %+v", rep.Status, rep.Tiers)
	}
	found := false
	for _, v := range rep.Tiers {
		if v.Tier != "audit" {
			continue
		}
		found = true
		if len(v.Reasons) == 0 || !strings.Contains(v.Reasons[0], "conservation") {
			t.Errorf("audit verdict lacks conservation reason: %+v", v)
		}
	}
	if !found {
		t.Fatalf("no audit tier verdict in %+v", rep.Tiers)
	}

	// Latched: the counter never decreases, so the verdict persists even
	// though the lane has resumed clean appends.
	a.StoreSeq(0, 8, 10, 1)
	s.SampleNow()
	if rep := h.Evaluate(); rep.Status != StatusDegraded {
		t.Fatalf("violation did not latch: %v", rep.Status)
	}
}
