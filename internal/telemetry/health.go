package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"
)

// Watchdog health model: threshold rules evaluated over the sampler's
// retained series turn raw metrics into per-tier ok/degraded/stalled
// verdicts with reasons — the "which tier is falling behind" answer that a
// point-in-time snapshot cannot give and the consumer's e2e histogram
// gives only after the damage. Served at /healthz (200/503 for
// orchestrators), printed by fsmon -status, and logged as structured slog
// warnings on transitions.

// Status is a tier's health verdict, ordered by severity.
type Status int

const (
	// StatusOK: no rule fired.
	StatusOK Status = iota
	// StatusDegraded: a pressure signal fired (queue saturation, lag or
	// backlog growth, error spike) but data still flows.
	StatusDegraded
	// StatusStalled: a stage takes input and emits nothing — the tier is
	// wedged and /healthz reports 503.
	StatusStalled
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusStalled:
		return "stalled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// MarshalJSON renders the status as its string form ("ok", "degraded",
// "stalled") so /healthz bodies read without a decoder ring.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form (the FetchHealth path).
func (s *Status) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "ok":
		*s = StatusOK
	case "degraded":
		*s = StatusDegraded
	case "stalled":
		*s = StatusStalled
	default:
		return fmt.Errorf("telemetry: unknown health status %q", str)
	}
	return nil
}

// Verdict is one tier's evaluated health.
type Verdict struct {
	Tier    string   `json:"tier"`
	Status  Status   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
}

// HealthReport is one full evaluation: the worst tier status overall plus
// every instrumented tier's verdict.
type HealthReport struct {
	Status    Status    `json:"status"`
	Tiers     []Verdict `json:"tiers"`
	SampledAt time.Time `json:"sampled_at"`
	Samples   int       `json:"samples"`
}

// Finding is one rule hit: the tier it indicts, the severity, and why.
type Finding struct {
	Tier   string
	Status Status
	Reason string
}

// Rule evaluates one failure mode over the sampler's retained series and
// returns its findings (none when healthy).
type Rule struct {
	Name string
	Eval func(s *Sampler, o HealthOptions) []Finding
}

// HealthOptions tunes the built-in rules.
type HealthOptions struct {
	// Windows is K, the consecutive sample intervals a condition must
	// hold before it fires (default 3). Stall, saturation, and growth
	// rules all require K windows so one slow scrape does not page.
	Windows int
	// SaturationFraction is the queue depth/capacity ratio treated as
	// saturated (default 0.9).
	SaturationFraction float64
	// ErrorRatePerSec is the fid2path real-error rate above which the
	// stale-FID/error spike rule fires (default 1/s).
	ErrorRatePerSec float64
	// HeartbeatLapseMS is the cluster-node heartbeat age (milliseconds
	// since the node last heard any peer) above which the
	// heartbeat-lapse rule flags the cluster tier degraded (default
	// 1000ms). Single-node clusters never lapse: a node with no peers
	// reports zero age.
	HeartbeatLapseMS float64
	// Logger receives transition warnings (tier ok→degraded→stalled and
	// recoveries); nil discards.
	Logger *slog.Logger
	// OnTransition, when set, is invoked once per tier status change
	// (worsening and recovery alike) after each evaluation. Hooks fire
	// outside the health model's lock, so they may safely re-enter the
	// registry or trigger another evaluation. A flight recorder attached
	// to the registry is notified regardless; this hook runs in addition
	// to it.
	OnTransition func(Transition)
	// SamplerHistory is the sampler retention depth (samples) callers
	// that build the sampler alongside the health model should use
	// (0 = DefaultSeriesLen). NewHealth itself never resizes an existing
	// sampler; the option rides here so one struct configures the whole
	// watchdog surface (fsmon -metrics-history).
	SamplerHistory int
}

// Transition is one tier's status change between consecutive
// evaluations, as delivered to OnTransition hooks and the flight
// recorder.
type Transition struct {
	Tier    string
	From    Status
	To      Status
	Reasons []string
	// Report is the full evaluation the transition was observed in, so
	// hooks need not re-evaluate to see the surrounding verdicts.
	Report HealthReport
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Windows <= 0 {
		o.Windows = 3
	}
	if o.SaturationFraction <= 0 {
		o.SaturationFraction = 0.9
	}
	if o.ErrorRatePerSec <= 0 {
		o.ErrorRatePerSec = 1
	}
	if o.HeartbeatLapseMS <= 0 {
		o.HeartbeatLapseMS = 1000
	}
	return o
}

// Health evaluates rules over a sampler. All methods are safe for
// concurrent use and nil-safe.
type Health struct {
	s    *Sampler
	opts HealthOptions
	slog *slog.Logger

	mu    sync.Mutex
	rules []Rule
	last  map[string]Status // tier → previous status, for transition logs

	watchOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHealth builds a health model over the sampler with the built-in rule
// set:
//
//   - pipeline stage stall: a stage's input rate > 0 while its output
//     rate == 0 for K windows (Evaluate reports the tier stalled)
//   - queue saturation: a subscription queue at >= SaturationFraction of
//     capacity for K windows
//   - consumer cursor lag growth: a partition's cursor lag strictly
//     growing for K windows
//   - changelog backlog growth: a collector's changelog lag strictly
//     growing for K windows
//   - stale-FID / resolution error spike: fid2path real-error rate above
//     ErrorRatePerSec over the last window
//   - cluster heartbeat lapse: an aggregator node's peer-heartbeat age
//     above HeartbeatLapseMS in the newest sample — a member is late and
//     handoff may be imminent
//   - conservation violation: the delivery-conservation auditor detected
//     a sequence gap or duplicate append (fsmon.audit.violations > 0) —
//     events were lost or double-stored somewhere between capture and
//     delivery
//
// Rules discover their metrics by name pattern from the newest sample, so
// one model covers any deployment shape (N MDTs, P partitions) without
// per-component wiring. AddRule extends the set.
func NewHealth(s *Sampler, opts HealthOptions) *Health {
	opts = opts.withDefaults()
	h := &Health{
		s:    s,
		opts: opts,
		slog: ComponentLogger(opts.Logger, "health"),
		last: map[string]Status{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	h.rules = []Rule{
		{Name: "pipeline-stall", Eval: stallRule},
		{Name: "queue-saturation", Eval: saturationRule},
		{Name: "cursor-lag-growth", Eval: growthRule(".cursor_lag.", "consumer cursor lag growing")},
		{Name: "changelog-backlog-growth", Eval: growthRule(".changelog_lag", "changelog backlog growing")},
		{Name: "resolution-error-spike", Eval: errorSpikeRule},
		{Name: "cluster-heartbeat-lapse", Eval: heartbeatLapseRule},
		{Name: "conservation-violation", Eval: conservationRule},
	}
	return h
}

// AddRule appends a custom rule. Safe on a nil receiver (no-op).
func (h *Health) AddRule(r Rule) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.rules = append(h.rules, r)
	h.mu.Unlock()
}

// Start runs the watchdog: every interval (<= 0 = the sampler's interval,
// or DefaultSampleInterval without one) it takes a fresh sample and
// evaluates, so transitions are logged even when nobody polls /healthz.
// Safe on a nil receiver.
func (h *Health) Start(interval time.Duration) {
	if h == nil {
		return
	}
	h.watchOnce.Do(func() {
		if interval <= 0 {
			interval = h.s.Interval()
		}
		if interval <= 0 {
			interval = DefaultSampleInterval
		}
		go h.watch(interval)
	})
}

func (h *Health) watch(interval time.Duration) {
	defer close(h.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.Evaluate()
		}
	}
}

// Close stops the watchdog goroutine (if started). Safe on a nil receiver
// and safe to call more than once.
func (h *Health) Close() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	h.watchOnce.Do(func() { close(h.done) }) // never started: unblock the wait
	<-h.done
}

// Evaluate runs every rule over the sampler's current history and returns
// the merged per-tier report. Transitions against the previous evaluation
// are logged (warn on worsening, info on recovery). Safe on a nil
// receiver (empty, ok report).
func (h *Health) Evaluate() HealthReport {
	rep := HealthReport{SampledAt: time.Now()}
	if h == nil {
		return rep
	}
	rep.Samples = h.s.Len()
	h.mu.Lock()
	rules := make([]Rule, len(h.rules))
	copy(rules, h.rules)
	h.mu.Unlock()

	verdicts := map[string]*Verdict{}
	// Every instrumented tier gets a verdict, default ok — "no news" and
	// "not monitored" must not look alike.
	for _, name := range h.s.names() {
		t := tierOf(name)
		if _, ok := verdicts[t]; !ok {
			verdicts[t] = &Verdict{Tier: t, Status: StatusOK}
		}
	}
	for _, r := range rules {
		if r.Eval == nil {
			continue
		}
		for _, f := range r.Eval(h.s, h.opts) {
			v, ok := verdicts[f.Tier]
			if !ok {
				v = &Verdict{Tier: f.Tier}
				verdicts[f.Tier] = v
			}
			if f.Status > v.Status {
				v.Status = f.Status
			}
			v.Reasons = append(v.Reasons, f.Reason)
		}
	}
	tiers := make([]Verdict, 0, len(verdicts))
	for _, v := range verdicts {
		tiers = append(tiers, *v)
		if v.Status > rep.Status {
			rep.Status = v.Status
		}
	}
	sort.Slice(tiers, func(i, j int) bool { return tiers[i].Tier < tiers[j].Tier })
	rep.Tiers = tiers
	// Mirror every verdict as a fsmon.health.<tier> gauge (0=ok,
	// 1=degraded, 2=stalled) so Prometheus scrapes and the federated
	// cluster view can alert on tier health without parsing /healthz.
	if reg := h.registry(); reg != nil {
		for _, v := range tiers {
			reg.Gauge("fsmon.health." + v.Tier).Set(int64(v.Status))
		}
	}
	h.notifyTransitions(tiers, rep)
	return rep
}

// registry returns the registry underneath the sampler this model
// evaluates (nil when unwired).
func (h *Health) registry() *Registry {
	if h == nil || h.s == nil {
		return nil
	}
	return h.s.reg
}

// notifyTransitions compares the evaluation against the previous one,
// logs every status change under the lock, then fires the OnTransition
// hook and the registry's flight recorder outside it — hooks re-enter
// the registry (snapshot, evaluate), and holding h.mu across arbitrary
// callbacks invites deadlock.
func (h *Health) notifyTransitions(tiers []Verdict, rep HealthReport) {
	h.mu.Lock()
	var fired []Transition
	for _, v := range tiers {
		prev, seen := h.last[v.Tier]
		if seen && prev == v.Status {
			continue
		}
		h.last[v.Tier] = v.Status
		switch {
		case v.Status > StatusOK:
			h.slog.Warn("tier health transition",
				"tier", v.Tier, "from", prev.String(), "to", v.Status.String(),
				"reasons", strings.Join(v.Reasons, "; "))
		case seen: // recovery; a fresh ok tier is not news
			h.slog.Info("tier recovered", "tier", v.Tier, "from", prev.String())
		default: // fresh ok tier: not a transition
			continue
		}
		fired = append(fired, Transition{
			Tier: v.Tier, From: prev, To: v.Status, Reasons: v.Reasons, Report: rep,
		})
	}
	h.mu.Unlock()
	if len(fired) == 0 {
		return
	}
	reg := h.registry()
	for _, t := range fired {
		if fr := reg.Flight(); fr != nil {
			fr.OnTransition(t)
		}
		if h.opts.OnTransition != nil {
			h.opts.OnTransition(t)
		}
	}
}

// --- built-in rules ---

// stallRule: for every pipeline stage mirrored as "<prefix>.in"/".out",
// K consecutive windows of positive input deltas with zero output deltas
// means the stage accepts work and emits nothing — stalled.
func stallRule(s *Sampler, o HealthOptions) []Finding {
	var out []Finding
	for _, name := range s.names() {
		if !strings.HasSuffix(name, ".in") || !strings.Contains(name, ".pipeline.") {
			continue
		}
		outName := strings.TrimSuffix(name, ".in") + ".out"
		din := s.Deltas(name, o.Windows)
		dout := s.Deltas(outName, o.Windows)
		if len(din) < o.Windows || len(dout) < o.Windows {
			continue
		}
		stalled := true
		for i := 0; i < o.Windows; i++ {
			if din[len(din)-1-i] <= 0 || dout[len(dout)-1-i] != 0 {
				stalled = false
				break
			}
		}
		if stalled {
			stage := strings.TrimSuffix(name, ".in")
			out = append(out, Finding{
				Tier:   tierOf(name),
				Status: StatusStalled,
				Reason: fmt.Sprintf("stage %s: input flowing, no output for %d windows", stage, o.Windows),
			})
		}
	}
	return out
}

// saturationRule: a subscription queue holding >= SaturationFraction of
// its capacity for K consecutive samples is back-pressuring its publisher.
func saturationRule(s *Sampler, o HealthOptions) []Finding {
	var out []Finding
	for _, name := range s.names() {
		if !strings.HasSuffix(name, ".queue_depth") {
			continue
		}
		capName := strings.TrimSuffix(name, ".queue_depth") + ".queue_cap"
		depth := s.Series(name)
		caps := s.Series(capName)
		if len(depth) < o.Windows || len(caps) == 0 {
			continue
		}
		qcap := caps[len(caps)-1].V
		if qcap <= 0 {
			continue
		}
		saturated := true
		for i := 0; i < o.Windows; i++ {
			if depth[len(depth)-1-i].V/qcap < o.SaturationFraction {
				saturated = false
				break
			}
		}
		if saturated {
			out = append(out, Finding{
				Tier:   tierOf(name),
				Status: StatusDegraded,
				Reason: fmt.Sprintf("%s at %.0f%% of capacity for %d windows", name,
					100*depth[len(depth)-1].V/qcap, o.Windows),
			})
		}
	}
	return out
}

// growthRule builds a rule that fires when every one of the last K deltas
// of a matching series is positive — monotone growth of a quantity that
// should drain (cursor lag, changelog backlog).
func growthRule(match, what string) func(*Sampler, HealthOptions) []Finding {
	return func(s *Sampler, o HealthOptions) []Finding {
		var out []Finding
		for _, name := range s.names() {
			if !strings.Contains(name, match) {
				continue
			}
			d := s.Deltas(name, o.Windows)
			if len(d) < o.Windows {
				continue
			}
			growing := true
			for _, dv := range d[len(d)-o.Windows:] {
				if dv <= 0 {
					growing = false
					break
				}
			}
			if growing {
				out = append(out, Finding{
					Tier:   tierOf(name),
					Status: StatusDegraded,
					Reason: fmt.Sprintf("%s: %s for %d windows", name, what, o.Windows),
				})
			}
		}
		return out
	}
}

// errorSpikeRule: fid2path real-error rate (stale-FID churn that
// Algorithm 1 cannot absorb surfaces here) above the threshold over the
// last window.
func errorSpikeRule(s *Sampler, o HealthOptions) []Finding {
	var out []Finding
	for _, name := range s.names() {
		if !strings.HasSuffix(name, ".fid2path_errors") {
			continue
		}
		pts := s.Series(name)
		if len(pts) < 2 {
			continue
		}
		last, prev := pts[len(pts)-1], pts[len(pts)-2]
		dt := last.T.Sub(prev.T).Seconds()
		if dt <= 0 {
			continue
		}
		if rate := (last.V - prev.V) / dt; rate > o.ErrorRatePerSec {
			out = append(out, Finding{
				Tier:   tierOf(name),
				Status: StatusDegraded,
				Reason: fmt.Sprintf("%s: %.1f errors/s (threshold %.1f)", name, rate, o.ErrorRatePerSec),
			})
		}
	}
	return out
}

// conservationRule: the delivery-conservation auditor counted a sequence
// gap or duplicate store append. The detectors fire at the moment of the
// violating append/delivery, so the rule sees it in the very next sample
// — within one sampler window. The finding latches (the counter never
// decreases): lost events stay lost, and an operator clearing the
// condition restarts the deployment, not the rule.
func conservationRule(s *Sampler, o HealthOptions) []Finding {
	var out []Finding
	for _, name := range s.names() {
		if !strings.HasSuffix(name, ".violations") || !strings.Contains(name, ".audit.") {
			continue
		}
		pts := s.Series(name)
		if len(pts) == 0 {
			continue
		}
		if v := pts[len(pts)-1].V; v > 0 {
			gaps := newestValue(s, strings.TrimSuffix(name, ".violations")+".seq_gaps")
			dups := newestValue(s, strings.TrimSuffix(name, ".violations")+".seq_dups")
			out = append(out, Finding{
				Tier:   tierOf(name),
				Status: StatusDegraded,
				Reason: fmt.Sprintf("%s: %.0f conservation violations (gaps=%.0f dups=%.0f) — delivery is not lossless", name, v, gaps, dups),
			})
		}
	}
	return out
}

// newestValue reads a series' newest point (0 when absent).
func newestValue(s *Sampler, name string) float64 {
	pts := s.Series(name)
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].V
}

// heartbeatLapseRule: a cluster node reporting a peer-heartbeat age above
// the threshold has lost contact with at least one member — the membership
// protocol is about to declare that peer dead and hand its partitions off.
// A single point suffices (age is already a duration, not a rate): by the
// time K windows of silence accumulate the handoff has happened.
func heartbeatLapseRule(s *Sampler, o HealthOptions) []Finding {
	var out []Finding
	for _, name := range s.names() {
		if !strings.HasSuffix(name, ".heartbeat_age_ms") {
			continue
		}
		pts := s.Series(name)
		if len(pts) == 0 {
			continue
		}
		if age := pts[len(pts)-1].V; age > o.HeartbeatLapseMS {
			out = append(out, Finding{
				Tier:   tierOf(name),
				Status: StatusDegraded,
				Reason: fmt.Sprintf("%s: peer heartbeat %.0fms old (threshold %.0fms)", name, age, o.HeartbeatLapseMS),
			})
		}
	}
	return out
}
