package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Incident flight recorder: the layer that turns the watchdog's "a tier
// degraded" verdict into forensics. A health transition (or a manual
// trigger, or an incident frame from another cluster member) captures a
// self-contained diagnostic bundle — registry snapshot, full sampler
// history, the completed trace ring, conservation-audit counters,
// per-tier verdicts, the federated cluster view, goroutine and heap
// profiles, and the bounded log ring — into a bounded directory of JSON
// files. Captures are debounced and rate-limited so a flapping rule
// cannot fill the disk, and each trigger arms an adaptive trace-sampling
// boost so the bundle holds dense end-to-end traces instead of the
// steady-state 1-in-1024 statistical dust.

// Incident flight-recorder defaults.
const (
	// DefaultIncidentRetain is the bundle-retention depth: the recorder
	// keeps the newest K bundles on disk and prunes the rest.
	DefaultIncidentRetain = 8
	// DefaultIncidentDebounce collapses transitions arriving within this
	// window of the previous trigger into the same incident.
	DefaultIncidentDebounce = 5 * time.Second
	// DefaultIncidentInterval is the minimum spacing between locally
	// triggered captures (cluster-coordinated captures bypass it — a
	// correlated bundle set is the point).
	DefaultIncidentInterval = 30 * time.Second
	// DefaultIncidentBoostN is the boosted trace-sampling rate.
	DefaultIncidentBoostN = 16
	// DefaultIncidentBoostFor is the boost cooldown window.
	DefaultIncidentBoostFor = 30 * time.Second
	// DefaultIncidentDelay is the trigger→capture gap: long enough for
	// boosted-rate traces to complete and land in the ring, short enough
	// that the bundle appears within one watchdog window.
	DefaultIncidentDelay = 500 * time.Millisecond
)

// IncidentOptions configures the flight recorder.
type IncidentOptions struct {
	// Dir is the bundle directory (required; created if absent).
	Dir string
	// Retain is the bundle-retention depth (0 = DefaultIncidentRetain).
	Retain int
	// Debounce collapses triggers within this window of the previous one
	// into the same incident (0 = DefaultIncidentDebounce; < 0 disables).
	Debounce time.Duration
	// MinInterval is the minimum spacing between locally triggered
	// captures (0 = DefaultIncidentInterval; < 0 disables).
	MinInterval time.Duration
	// BoostN is the boosted trace-sampling rate armed on each trigger
	// (0 = DefaultIncidentBoostN; < 0 disables boosting).
	BoostN int
	// BoostFor is the boost cooldown window (0 = DefaultIncidentBoostFor).
	BoostFor time.Duration
	// CaptureDelay is the trigger→capture gap during which boosted
	// traces accumulate (0 = DefaultIncidentDelay; < 0 captures
	// immediately).
	CaptureDelay time.Duration
	// Node tags bundles with the capturing member's identity on
	// clustered deployments ("" outside a cluster).
	Node string
	// Logger receives capture/suppression records; nil discards.
	Logger *slog.Logger
}

func (o IncidentOptions) withDefaults() IncidentOptions {
	if o.Retain <= 0 {
		o.Retain = DefaultIncidentRetain
	}
	if o.Debounce == 0 {
		o.Debounce = DefaultIncidentDebounce
	}
	if o.MinInterval == 0 {
		o.MinInterval = DefaultIncidentInterval
	}
	if o.BoostN == 0 {
		o.BoostN = DefaultIncidentBoostN
	}
	if o.BoostFor <= 0 {
		o.BoostFor = DefaultIncidentBoostFor
	}
	if o.CaptureDelay == 0 {
		o.CaptureDelay = DefaultIncidentDelay
	}
	return o
}

// IncidentInfo is one bundle's index entry — what /debug/incidents lists.
type IncidentInfo struct {
	ID           string   `json:"id"`
	CapturedAtMS int64    `json:"captured_at_ms"`
	Trigger      string   `json:"trigger"` // "watchdog" | "manual" | "cluster"
	Tier         string   `json:"tier,omitempty"`
	From         string   `json:"from,omitempty"`
	To           string   `json:"to,omitempty"`
	Reasons      []string `json:"reasons,omitempty"`
	File         string   `json:"file"`
}

// IncidentBundle is the self-contained diagnostic document one capture
// writes: everything an engineer needs to reconstruct the minutes before
// the trip without access to the (possibly wedged) process.
type IncidentBundle struct {
	ID           string   `json:"id"`
	Node         string   `json:"node,omitempty"`
	CapturedAtMS int64    `json:"captured_at_ms"`
	Trigger      string   `json:"trigger"`
	Tier         string   `json:"tier,omitempty"`
	From         string   `json:"from,omitempty"`
	To           string   `json:"to,omitempty"`
	Reasons      []string `json:"reasons,omitempty"`

	// TraceSampleN is the effective sampling rate at capture time;
	// BoostActive says whether the adaptive boost was in effect.
	TraceSampleN int  `json:"trace_sample_n"`
	BoostActive  bool `json:"boost_active"`

	Health  HealthReport   `json:"health"`
	Metrics map[string]any `json:"metrics"`
	History []Sample       `json:"history,omitempty"`
	Traces  []Trace        `json:"traces,omitempty"`
	Audit   *AuditSnapshot `json:"audit,omitempty"`
	Cluster *ClusterReport `json:"cluster,omitempty"`
	Logs    []LogRecord    `json:"logs,omitempty"`

	Goroutines string `json:"goroutine_profile,omitempty"`
	Heap       string `json:"heap_profile,omitempty"`
}

// FlightRecorder reacts to watchdog transitions (and manual or
// cluster-remote triggers) by capturing incident bundles. All methods
// are safe for concurrent use and safe on a nil receiver.
type FlightRecorder struct {
	reg  *Registry
	opts IncidentOptions
	slog *slog.Logger

	captures   atomic.Uint64 // bundles written
	suppressed atomic.Uint64 // triggers swallowed by debounce/rate limit

	mu          sync.Mutex
	lastTrigger time.Time
	lastCapture time.Time
	seen        map[string]time.Time // incident IDs handled (cluster dedup)
	index       map[string]IncidentInfo
	broadcast   func(id, reason string)
	inflight    int        // async captures not yet landed
	idle        *sync.Cond // signaled when inflight drops to zero
}

// NewFlightRecorder builds a recorder writing bundles under opts.Dir
// (created if absent). Most callers use Registry.EnableFlightRecorder
// instead, which also attaches the recorder where the health model and
// the HTTP surface discover it.
func NewFlightRecorder(reg *Registry, opts IncidentOptions) (*FlightRecorder, error) {
	if opts.Dir == "" {
		return nil, errors.New("telemetry: flight recorder needs a bundle directory")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: incident dir: %w", err)
	}
	f := &FlightRecorder{
		reg:   reg,
		opts:  opts,
		slog:  ComponentLogger(opts.Logger, "flight"),
		seen:  make(map[string]time.Time),
		index: make(map[string]IncidentInfo),
	}
	f.idle = sync.NewCond(&f.mu)
	return f, nil
}

// startCapture registers one in-flight asynchronous capture and runs fn
// on its own goroutine; doneCapture (deferred inside) releases Wait.
func (f *FlightRecorder) startCapture(fn func()) {
	f.mu.Lock()
	f.inflight++
	f.mu.Unlock()
	go func() {
		defer func() {
			f.mu.Lock()
			f.inflight--
			if f.inflight == 0 {
				f.idle.Broadcast()
			}
			f.mu.Unlock()
		}()
		fn()
	}()
}

// Dir returns the bundle directory ("" on a nil receiver).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.opts.Dir
}

// Captures returns the lifetime bundle count (0 on nil).
func (f *FlightRecorder) Captures() uint64 {
	if f == nil {
		return 0
	}
	return f.captures.Load()
}

// Suppressed returns how many triggers the debounce/rate limit swallowed
// (0 on nil).
func (f *FlightRecorder) Suppressed() uint64 {
	if f == nil {
		return 0
	}
	return f.suppressed.Load()
}

// SetBroadcast installs the cluster publish hook: locally declared
// incidents (watchdog and manual) announce their ID to the membership so
// every member captures the same window. Remote-declared incidents are
// never re-broadcast. Safe on nil.
func (f *FlightRecorder) SetBroadcast(fn func(id, reason string)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.broadcast = fn
	f.mu.Unlock()
}

func (f *FlightRecorder) broadcastFn() func(id, reason string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broadcast
}

// OnTransition is the watchdog hook. A worsening transition
// (ok→degraded/stalled, degraded→stalled) arms the trace boost and
// schedules a debounced, rate-limited capture; a recovery that leaves
// the whole report healthy lets the boost decay immediately. The capture
// itself runs on its own goroutine — the hook fires from the watchdog
// loop and from /healthz requests, neither of which may block on a heap
// profile. Safe on nil.
func (f *FlightRecorder) OnTransition(t Transition) {
	if f == nil {
		return
	}
	if t.To <= t.From {
		if t.Report.Status == StatusOK {
			f.reg.ClearTraceBoost()
		}
		return
	}
	f.trigger("watchdog", &t)
}

func (f *FlightRecorder) trigger(trigger string, t *Transition) {
	now := time.Now()
	f.mu.Lock()
	debounced := f.opts.Debounce > 0 && !f.lastTrigger.IsZero() && now.Sub(f.lastTrigger) < f.opts.Debounce
	limited := f.opts.MinInterval > 0 && !f.lastCapture.IsZero() && now.Sub(f.lastCapture) < f.opts.MinInterval
	if debounced || limited {
		f.mu.Unlock()
		f.suppressed.Add(1)
		// A suppressed trigger still re-arms the boost: the incident is
		// ongoing and the already-captured (or imminent) bundle benefits
		// from dense traces either way.
		if f.opts.BoostN > 0 {
			f.reg.BoostTracing(f.opts.BoostN, f.opts.BoostFor)
		}
		f.slog.Debug("incident trigger suppressed",
			"trigger", trigger, "debounced", debounced, "rate_limited", limited)
		return
	}
	f.lastTrigger = now
	// Reserve the rate-limit slot up front so a burst racing the async
	// capture cannot double-book it.
	f.lastCapture = now
	f.mu.Unlock()

	if f.opts.BoostN > 0 {
		f.reg.BoostTracing(f.opts.BoostN, f.opts.BoostFor)
	}
	id := newIncidentID()
	f.markSeen(id)
	reason := ""
	if t != nil && len(t.Reasons) > 0 {
		reason = t.Reasons[0]
	}
	if bc := f.broadcastFn(); bc != nil {
		bc(id, reason)
	}
	tcopy := t
	f.startCapture(func() {
		if d := f.opts.CaptureDelay; d > 0 {
			time.Sleep(d)
		}
		f.capture(id, trigger, tcopy, "")
	})
}

// TriggerIncident captures a bundle right now — the manual path behind
// Monitor.TriggerIncident, fsmon -incident, and POST
// /debug/incidents/trigger. It bypasses the debounce and rate limit
// (an operator asking twice means twice), broadcasts to the cluster when
// wired, and returns once the bundle is on disk.
func (f *FlightRecorder) TriggerIncident(reason string) (IncidentInfo, error) {
	if f == nil {
		return IncidentInfo{}, errors.New("telemetry: no flight recorder attached")
	}
	now := time.Now()
	f.mu.Lock()
	f.lastTrigger = now
	f.lastCapture = now
	f.mu.Unlock()
	if f.opts.BoostN > 0 {
		f.reg.BoostTracing(f.opts.BoostN, f.opts.BoostFor)
	}
	id := newIncidentID()
	f.markSeen(id)
	if bc := f.broadcastFn(); bc != nil {
		bc(id, reason)
	}
	return f.capture(id, "manual", nil, reason)
}

// CaptureRemote captures a bundle for an incident another cluster member
// declared — the receive side of the incident frame on the
// cluster.telemetry topic. Deduplication is by incident ID alone:
// coordinated captures bypass the local debounce and rate limit so every
// member snapshots the same window, and in-process multi-node
// deployments (N memberships, one registry) capture once, not N times.
// Runs asynchronously; safe on nil.
func (f *FlightRecorder) CaptureRemote(id, from, reason string) {
	if f == nil || id == "" {
		return
	}
	if !f.markSeen(id) {
		return
	}
	if f.opts.BoostN > 0 {
		f.reg.BoostTracing(f.opts.BoostN, f.opts.BoostFor)
	}
	f.mu.Lock()
	f.lastTrigger = time.Now()
	f.mu.Unlock()
	if reason == "" {
		reason = "incident declared by " + from
	} else {
		reason = reason + " (declared by " + from + ")"
	}
	rsn := reason
	f.startCapture(func() {
		if d := f.opts.CaptureDelay; d > 0 {
			time.Sleep(d)
		}
		f.capture(id, "cluster", nil, rsn)
	})
}

// markSeen records an incident ID, returning false when it was already
// handled. The set is pruned by age so it stays bounded.
func (f *FlightRecorder) markSeen(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.seen[id]; ok {
		return false
	}
	if len(f.seen) >= 256 {
		cutoff := time.Now().Add(-10 * time.Minute)
		for k, at := range f.seen {
			if at.Before(cutoff) {
				delete(f.seen, k)
			}
		}
	}
	f.seen[id] = time.Now()
	return true
}

// Wait blocks until every in-flight asynchronous capture has landed —
// the deterministic handle tests and Close paths use. Safe on nil.
func (f *FlightRecorder) Wait() {
	if f == nil {
		return
	}
	f.mu.Lock()
	for f.inflight > 0 {
		f.idle.Wait()
	}
	f.mu.Unlock()
}

// capture assembles and persists one bundle.
func (f *FlightRecorder) capture(id, trigger string, t *Transition, reason string) (IncidentInfo, error) {
	now := time.Now()
	b := IncidentBundle{
		ID:           id,
		Node:         f.opts.Node,
		CapturedAtMS: now.UnixMilli(),
		Trigger:      trigger,
		TraceSampleN: f.reg.TraceSampleN(),
		BoostActive:  f.reg.TraceBoostActive(),
	}
	if t != nil {
		b.Tier = t.Tier
		b.From = t.From.String()
		b.To = t.To.String()
		b.Reasons = append(b.Reasons, t.Reasons...)
		b.Health = t.Report
	}
	if reason != "" {
		b.Reasons = append(b.Reasons, reason)
	}
	if b.Health.SampledAt.IsZero() {
		if h := f.reg.Health(); h != nil {
			b.Health = h.Evaluate()
		}
	}
	b.Metrics = f.reg.Snapshot()
	b.History = f.reg.Sampler().History()
	b.Traces = f.reg.Traces().Snapshot()
	if a := f.reg.Audit(); a != nil {
		s := a.Snapshot()
		b.Audit = &s
	}
	if fed := f.reg.Federation(); fed != nil {
		rep := fed.Report()
		b.Cluster = &rep
	}
	b.Logs = f.reg.LogRing().Snapshot()
	b.Goroutines = profileText("goroutine")
	b.Heap = profileText("heap")

	info := IncidentInfo{
		ID:           id,
		CapturedAtMS: b.CapturedAtMS,
		Trigger:      trigger,
		Tier:         b.Tier,
		From:         b.From,
		To:           b.To,
		Reasons:      b.Reasons,
		File:         id + ".json",
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return info, fmt.Errorf("telemetry: encode incident bundle: %w", err)
	}
	path := filepath.Join(f.opts.Dir, info.File)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		f.slog.Warn("incident bundle write failed", "id", id, "err", err)
		return info, err
	}
	f.captures.Add(1)
	f.mu.Lock()
	f.index[id] = info
	f.mu.Unlock()
	f.prune()
	f.slog.Warn("incident bundle captured",
		"id", id, "trigger", trigger, "tier", b.Tier, "file", path,
		"traces", len(b.Traces), "samples", len(b.History), "logs", len(b.Logs))
	return info, nil
}

// bundleFiles lists the on-disk bundle filenames, oldest first. Incident
// IDs embed a zero-padded unix-millisecond stamp, so lexicographic order
// is chronological.
func (f *FlightRecorder) bundleFiles() []string {
	ents, err := os.ReadDir(f.opts.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "inc-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// prune enforces the retention bound: only the newest Retain bundles
// stay on disk.
func (f *FlightRecorder) prune() {
	names := f.bundleFiles()
	if len(names) <= f.opts.Retain {
		return
	}
	for _, name := range names[:len(names)-f.opts.Retain] {
		if err := os.Remove(filepath.Join(f.opts.Dir, name)); err == nil {
			f.mu.Lock()
			delete(f.index, strings.TrimSuffix(name, ".json"))
			f.mu.Unlock()
		}
	}
}

// List returns the incidents currently retained on disk, newest first.
// Bundles captured by this process carry their full index entry; bundles
// surviving from a previous run list with identity and file only. Safe
// on nil (nil slice).
func (f *FlightRecorder) List() []IncidentInfo {
	if f == nil {
		return nil
	}
	names := f.bundleFiles()
	out := make([]IncidentInfo, 0, len(names))
	f.mu.Lock()
	for i := len(names) - 1; i >= 0; i-- { // newest first
		id := strings.TrimSuffix(names[i], ".json")
		if info, ok := f.index[id]; ok {
			out = append(out, info)
			continue
		}
		info := IncidentInfo{ID: id, File: names[i]}
		if st, err := os.Stat(filepath.Join(f.opts.Dir, names[i])); err == nil {
			info.CapturedAtMS = st.ModTime().UnixMilli()
		}
		out = append(out, info)
	}
	f.mu.Unlock()
	return out
}

// Read returns one bundle's raw JSON by incident ID. Safe on nil.
func (f *FlightRecorder) Read(id string) ([]byte, error) {
	if f == nil {
		return nil, errors.New("telemetry: no flight recorder attached")
	}
	if !validIncidentID(id) {
		return nil, fmt.Errorf("telemetry: bad incident id %q", id)
	}
	return os.ReadFile(filepath.Join(f.opts.Dir, id+".json"))
}

// newIncidentID mints a cluster-unique incident ID. The zero-padded
// millisecond stamp keeps IDs (and bundle filenames) chronologically
// sortable; the random suffix separates members tripping in the same
// millisecond.
func newIncidentID() string {
	return fmt.Sprintf("inc-%013d-%06x", time.Now().UnixMilli(), rand.Intn(1<<24))
}

// validIncidentID accepts only IDs newIncidentID could have minted — the
// fetch surface turns IDs into file paths, so anything else is rejected.
func validIncidentID(id string) bool {
	if !strings.HasPrefix(id, "inc-") || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := c == '-' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z')
		if !ok {
			return false
		}
	}
	return true
}

// profileText renders a runtime profile in its debug=1 text form ("" when
// unavailable).
func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	return buf.String()
}

// EnableFlightRecorder attaches an incident flight recorder to the
// registry: health transitions trigger captures (the health model
// notifies the attached recorder automatically), the bounded log ring is
// armed for bundle log capture, and the recorder's activity is mirrored
// as fsmon.incident.* gauges. Repeated calls return the existing
// recorder (options of later calls are ignored); nil registries error.
func (r *Registry) EnableFlightRecorder(opts IncidentOptions) (*FlightRecorder, error) {
	if r == nil {
		return nil, errors.New("telemetry: nil registry")
	}
	if f := r.flight.Load(); f != nil {
		return f, nil
	}
	f, err := NewFlightRecorder(r, opts)
	if err != nil {
		return nil, err
	}
	if !r.flight.CompareAndSwap(nil, f) {
		return r.flight.Load(), nil
	}
	r.EnableLogRing(0)
	r.GaugeFunc("fsmon.incident.captures", func() float64 { return float64(f.captures.Load()) })
	r.GaugeFunc("fsmon.incident.suppressed", func() float64 { return float64(f.suppressed.Load()) })
	return f, nil
}

// Flight returns the attached flight recorder (nil until
// EnableFlightRecorder). Safe on a nil registry.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}
