package telemetry

import (
	"context"
	"log/slog"
)

// discardHandler drops every record. Implemented locally rather than via
// slog.DiscardHandler, which entered the stdlib after this module's
// minimum Go version.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards everything — the default when
// no WithLogger option is given, so components log unconditionally
// without nil checks.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// ComponentLogger tags logger with a component attribute, defaulting to
// the nop logger when logger is nil. Every tier derives its logger
// through this so records are filterable by origin
// (component=collector|aggregator|consumer|store|robinhood|core).
func ComponentLogger(logger *slog.Logger, component string, args ...any) *slog.Logger {
	if logger == nil {
		return NopLogger()
	}
	l := logger.With("component", component)
	if len(args) > 0 {
		l = l.With(args...)
	}
	return l
}
