package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Sampled per-event span traces: a deterministically sampled event carries
// a trace ID across the wire, every tier it passes through appends a
// (tier, timestamp) span, and the consumer lands the completed chain here.
// The ring is bounded — tracing is a flight recorder, not a log — and
// dumps as Chrome trace_event JSON (chrome://tracing, Perfetto) via
// /traces or fsmon -trace-out.

// DefaultTraceRing is the completed-trace ring capacity.
const DefaultTraceRing = 512

// TraceSpan is one tier's hop in a trace: the tier name, the wall clock
// (unix nanoseconds) at which the traced batch passed it, and — on
// clustered deployments — the ID of the aggregation node that recorded
// the hop ("" outside the cluster).
type TraceSpan struct {
	Tier string `json:"tier"`
	TS   int64  `json:"ts_ns"`
	Node string `json:"node,omitempty"`
}

// Trace is one sampled event's span chain, collect → deliver.
type Trace struct {
	ID    uint64      `json:"id"`
	Spans []TraceSpan `json:"spans"`
}

// TraceRing is a bounded ring of completed traces. Add and Snapshot are
// safe for concurrent use; both are nil-safe.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	n     int
	added uint64
}

// NewTraceRing creates a ring retaining the last capacity traces
// (capacity <= 0 selects DefaultTraceRing).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &TraceRing{buf: make([]Trace, capacity)}
}

// Add appends a completed trace, evicting the oldest when full. Safe on a
// nil receiver.
func (r *TraceRing) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.added++
	r.mu.Unlock()
}

// Len returns the number of retained traces (0 on a nil receiver).
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Added returns the lifetime count of traces added (eviction does not
// decrement it). 0 on a nil receiver.
func (r *TraceRing) Added() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Snapshot returns the retained traces, oldest first. Safe on a nil
// receiver (nil slice).
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// SnapshotLimit returns up to limit retained traces, newest first — the
// bounded /traces?limit=N path. Only the returned traces are copied, so
// a small limit against a large ring stays cheap. limit <= 0 returns
// nil; safe on a nil receiver.
func (r *TraceRing) SnapshotLimit(limit int) []Trace {
	if r == nil || limit <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if limit > r.n {
		limit = r.n
	}
	out := make([]Trace, 0, limit)
	for i := 1; i <= limit; i++ {
		idx := r.next - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace_event format's traceEvents
// array (the "X" complete-event phase).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces as Chrome trace_event JSON: each trace
// becomes one row (tid), each span a complete event lasting until the next
// span's timestamp — so the waterfall reads as "where did this event spend
// its pipeline time". Spans are grouped by recording node as pid (named
// via process_name metadata; node-less spans land in the "pipeline"
// process), so a traced event that crossed a handoff or stray-forward
// still renders as one chain with each hop attributed to its owner. Load
// the output in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	// Assign pids in first-seen order: pid 1 is the node-less pipeline
	// (collectors, classic aggregator, consumers), each cluster node gets
	// its own numbered process.
	pids := map[string]int{"": 1}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "pipeline"},
	})
	for ti, tr := range traces {
		for si, sp := range tr.Spans {
			pid, ok := pids[sp.Node]
			if !ok {
				pid = len(pids) + 1
				pids[sp.Node] = pid
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "process_name", Ph: "M", PID: pid,
					Args: map[string]any{"name": "node " + sp.Node},
				})
			}
			ev := chromeEvent{
				Name: sp.Tier,
				Cat:  "fsmon",
				Ph:   "X",
				TS:   float64(sp.TS) / 1e3,
				Dur:  1, // point events get a visible sliver
				PID:  pid,
				TID:  ti + 1,
				Args: map[string]any{"trace_id": tr.ID},
			}
			if sp.Node != "" {
				ev.Args["node"] = sp.Node
			}
			if si+1 < len(tr.Spans) {
				if d := float64(tr.Spans[si+1].TS-sp.TS) / 1e3; d > ev.Dur {
					ev.Dur = d
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
