package telemetry

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// worsening fabricates an ok→stalled watchdog transition for direct
// recorder-hook tests.
func worsening(tier string) Transition {
	return Transition{
		Tier: tier, From: StatusOK, To: StatusStalled,
		Reasons: []string{"stage test: input flowing, no output"},
		Report: HealthReport{
			Status:    StatusStalled,
			Tiers:     []Verdict{{Tier: tier, Status: StatusStalled}},
			SampledAt: time.Now(),
		},
	}
}

// recovery fabricates the matching stalled→ok transition with a fully
// healthy report.
func recovery(tier string) Transition {
	return Transition{
		Tier: tier, From: StatusStalled, To: StatusOK,
		Report: HealthReport{
			Status:    StatusOK,
			Tiers:     []Verdict{{Tier: tier, Status: StatusOK}},
			SampledAt: time.Now(),
		},
	}
}

func bundleCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "inc-") && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestFlightDebounce: transitions arriving within the debounce window of
// the previous trigger collapse into one incident — one bundle, the rest
// counted as suppressed.
func TestFlightDebounce(t *testing.T) {
	reg := NewRegistry()
	dir := t.TempDir()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: dir, Debounce: time.Hour, MinInterval: -1, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fr.OnTransition(worsening("resolution"))
	}
	fr.Wait()
	if got := fr.Captures(); got != 1 {
		t.Fatalf("captures = %d, want 1 (debounce should collapse the burst)", got)
	}
	if got := fr.Suppressed(); got != 2 {
		t.Fatalf("suppressed = %d, want 2", got)
	}
	if n := bundleCount(t, dir); n != 1 {
		t.Fatalf("bundles on disk = %d, want 1", n)
	}
}

// TestFlightRateLimit: with debounce disabled, the minimum capture
// interval still spaces bundles out.
func TestFlightRateLimit(t *testing.T) {
	reg := NewRegistry()
	dir := t.TempDir()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: dir, Debounce: -1, MinInterval: time.Hour, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr.OnTransition(worsening("store"))
	fr.OnTransition(worsening("consumer")) // beyond debounce, inside MinInterval
	fr.Wait()
	if got := fr.Captures(); got != 1 {
		t.Fatalf("captures = %d, want 1 (rate limit should hold)", got)
	}
	if got := fr.Suppressed(); got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}
}

// TestFlightManualBypassesLimits: an operator asking twice means twice —
// TriggerIncident ignores debounce and rate limit.
func TestFlightManualBypassesLimits(t *testing.T) {
	reg := NewRegistry()
	dir := t.TempDir()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: dir, Debounce: time.Hour, MinInterval: time.Hour, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fr.TriggerIncident("first look")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fr.TriggerIncident("second look")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatalf("manual triggers shared incident ID %q", a.ID)
	}
	if got := fr.Captures(); got != 2 {
		t.Fatalf("captures = %d, want 2", got)
	}
	var bundle IncidentBundle
	data, err := fr.Read(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.Trigger != "manual" {
		t.Fatalf("trigger = %q, want manual", bundle.Trigger)
	}
	if len(bundle.Reasons) == 0 || bundle.Reasons[0] != "second look" {
		t.Fatalf("reasons = %v, want [second look]", bundle.Reasons)
	}
	if bundle.Goroutines == "" {
		t.Fatal("bundle missing goroutine profile")
	}
}

// TestFlightBoostAndDecay: a trigger tightens the trace-sampling rate for
// the cooldown window; expiry and full recovery both restore the base
// rate; a registry without tracing stays untraced.
func TestFlightBoostAndDecay(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTracing(1024, 0)
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: t.TempDir(), Debounce: -1, MinInterval: -1, CaptureDelay: -1,
		BoostN: 16, BoostFor: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.TraceSampleN(); n != 1024 {
		t.Fatalf("base rate = %d, want 1024", n)
	}
	fr.OnTransition(worsening("aggregator"))
	if n := reg.TraceSampleN(); n != 16 {
		t.Fatalf("boosted rate = %d, want 16", n)
	}
	if !reg.TraceBoostActive() {
		t.Fatal("boost not reported active")
	}
	// Decay path 1: the cooldown window expires.
	time.Sleep(120 * time.Millisecond)
	if n := reg.TraceSampleN(); n != 1024 {
		t.Fatalf("rate after cooldown = %d, want 1024", n)
	}
	// Decay path 2: a recovery to a fully healthy report clears the boost
	// immediately, without waiting out the window.
	fr.OnTransition(worsening("aggregator"))
	if n := reg.TraceSampleN(); n != 16 {
		t.Fatalf("re-boosted rate = %d, want 16", n)
	}
	fr.OnTransition(recovery("aggregator"))
	if n := reg.TraceSampleN(); n != 1024 {
		t.Fatalf("rate after recovery = %d, want 1024", n)
	}
	fr.Wait()

	// An untraced registry stays untraced: the boost must never turn
	// tracing on (the wire representation would change under load).
	cold := NewRegistry()
	if cold.BoostTracing(16, time.Minute) {
		t.Fatal("BoostTracing succeeded with tracing disabled")
	}
	if n := cold.TraceSampleN(); n != 0 {
		t.Fatalf("untraced registry rate = %d, want 0", n)
	}
}

// TestFlightRetention: the bundle directory keeps only the newest Retain
// bundles, and List returns them newest first.
func TestFlightRetention(t *testing.T) {
	reg := NewRegistry()
	dir := t.TempDir()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: dir, Retain: 2, Debounce: -1, MinInterval: -1, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last IncidentInfo
	for i := 0; i < 5; i++ {
		last, err = fr.TriggerIncident("fill")
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct millisecond stamps
	}
	if n := bundleCount(t, dir); n != 2 {
		t.Fatalf("bundles on disk = %d, want 2 after pruning", n)
	}
	list := fr.List()
	if len(list) != 2 {
		t.Fatalf("List() = %d entries, want 2", len(list))
	}
	if list[0].ID != last.ID {
		t.Fatalf("List() newest = %s, want %s", list[0].ID, last.ID)
	}
	if _, err := fr.Read(list[1].ID); err != nil {
		t.Fatalf("reading retained bundle: %v", err)
	}
	// Pruned bundles are gone from disk and from reads.
	if _, err := fr.Read("inc-0000000000000-000000"); err == nil {
		t.Fatal("reading a pruned/unknown bundle succeeded")
	}
}

// TestFlightWatchdogTrip is the end-to-end loop: a stalled pipeline stage
// observed by the sampler trips the watchdog, which captures a bundle
// holding the tripping rule, boosted-rate flag, sampler history, health
// gauges, and the log ring — all without any explicit wiring between the
// health model and the recorder.
func TestFlightWatchdogTrip(t *testing.T) {
	reg := NewRegistry()
	logger := reg.EnableLogRing(0).Wrap(nil)
	reg.EnableTracing(1024, 0)
	dir := t.TempDir()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: dir, CaptureDelay: -1, Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.StartSampler(time.Hour, 16) // ticker idle; SampleNow drives it
	defer s.Close()
	h := NewHealth(s, HealthOptions{Windows: 2, Logger: logger})
	reg.SetHealth(h)

	in := reg.Gauge("fsmon.resolution.pipeline.resolve.in")
	reg.Gauge("fsmon.resolution.pipeline.resolve.out").Set(0)
	for i := 1; i <= 3; i++ {
		in.Set(int64(i * 10))
		s.SampleNow()
	}
	rep := h.Evaluate()
	if rep.Status != StatusStalled {
		t.Fatalf("report status = %s, want stalled", rep.Status)
	}
	fr.Wait()
	if got := fr.Captures(); got != 1 {
		t.Fatalf("captures = %d, want 1", got)
	}

	// Satellite surface: the verdict is mirrored as a health gauge.
	snap := reg.Snapshot()
	if v, ok := snap["fsmon.health.resolution"].(float64); !ok || v != float64(StatusStalled) {
		t.Fatalf("fsmon.health.resolution = %v, want %d", snap["fsmon.health.resolution"], StatusStalled)
	}

	list := fr.List()
	if len(list) != 1 {
		t.Fatalf("List() = %d entries, want 1", len(list))
	}
	data, err := fr.Read(list[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var b IncidentBundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "watchdog" || b.Tier != "resolution" || b.To != "stalled" {
		t.Fatalf("bundle trigger/tier/to = %s/%s/%s, want watchdog/resolution/stalled", b.Trigger, b.Tier, b.To)
	}
	foundRule := false
	for _, r := range b.Reasons {
		if strings.Contains(r, "fsmon.resolution.pipeline.resolve") {
			foundRule = true
		}
	}
	if !foundRule {
		t.Fatalf("bundle reasons %v missing the tripping stall rule", b.Reasons)
	}
	if b.TraceSampleN != 16 || !b.BoostActive {
		t.Fatalf("bundle sampling = %d boost=%v, want 16/true", b.TraceSampleN, b.BoostActive)
	}
	if len(b.History) == 0 {
		t.Fatal("bundle missing sampler history")
	}
	if b.Health.Status != StatusStalled {
		t.Fatalf("bundle health status = %s, want stalled", b.Health.Status)
	}
	foundLog := false
	for _, lr := range b.Logs {
		if lr.Msg == "tier health transition" {
			foundLog = true
		}
	}
	if !foundLog {
		t.Fatal("bundle log ring missing the transition warning")
	}
	if len(b.Metrics) == 0 {
		t.Fatal("bundle missing metrics snapshot")
	}

	// Recovery: the stage drains again, the tier transitions back to ok,
	// and the watchdog clears the trace boost immediately.
	out := reg.Gauge("fsmon.resolution.pipeline.resolve.out")
	for i := 1; i <= 3; i++ {
		in.Add(10)
		out.Set(int64(i * 10))
		s.SampleNow()
	}
	if rep := h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("report after recovery = %s, want ok", rep.Status)
	}
	if n := reg.TraceSampleN(); n != 1024 {
		t.Fatalf("rate after recovery = %d, want 1024 (boost cleared)", n)
	}
	fr.Wait()
}

// TestFlightHTTPSurface: /debug/incidents lists bundles, fetches one by
// ID, triggers captures over POST, and rejects traversal-shaped IDs.
func TestFlightHTTPSurface(t *testing.T) {
	reg := NewRegistry()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: t.TempDir(), Debounce: -1, MinInterval: -1, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	list, err := FetchIncidents(base + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("fresh recorder lists %d incidents, want 0", len(list))
	}

	body, err := TriggerRemoteIncident(base + "/debug/incidents/trigger")
	if err != nil {
		t.Fatal(err)
	}
	var b IncidentBundle
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("trigger response is not a bundle: %v", err)
	}
	if b.Trigger != "manual" || b.ID == "" {
		t.Fatalf("trigger response id/trigger = %q/%q", b.ID, b.Trigger)
	}
	if fr.Captures() != 1 {
		t.Fatalf("captures = %d, want 1", fr.Captures())
	}

	list, err = FetchIncidents(base + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != b.ID {
		t.Fatalf("list = %+v, want the triggered incident", list)
	}

	resp, err := http.Get(base + "/debug/incidents/" + b.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch by ID: status %d", resp.StatusCode)
	}
	// GET on the trigger path must not capture; traversal IDs must 404.
	resp, err = http.Get(base + "/debug/incidents/trigger")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /debug/incidents/trigger succeeded, want method rejection")
	}
	resp, err = http.Get(base + "/debug/incidents/..%2Fsecrets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("traversal-shaped incident ID served, want 404")
	}

	// A server without a recorder answers 404 so probes can distinguish
	// "not armed" from "no incidents".
	bare, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := FetchIncidents("http://" + bare.Addr() + "/debug/incidents"); err == nil {
		t.Fatal("FetchIncidents succeeded against a recorder-less server")
	}
}

// TestFlightRemoteDedup: N memberships delivering the same incident frame
// to one shared recorder capture once; a fresh ID captures again and the
// remote reason names the declaring node.
func TestFlightRemoteDedup(t *testing.T) {
	reg := NewRegistry()
	fr, err := reg.EnableFlightRecorder(IncidentOptions{
		Dir: t.TempDir(), Debounce: -1, MinInterval: -1, CaptureDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fr.CaptureRemote("inc-0000000000001-abcdef", "n1", "stage stalled")
	}
	fr.CaptureRemote("inc-0000000000002-abcdef", "n2", "")
	fr.Wait()
	if got := fr.Captures(); got != 2 {
		t.Fatalf("captures = %d, want 2 (dedup by incident ID)", got)
	}
	data, err := fr.Read("inc-0000000000001-abcdef")
	if err != nil {
		t.Fatal(err)
	}
	var b IncidentBundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "cluster" {
		t.Fatalf("trigger = %q, want cluster", b.Trigger)
	}
	if len(b.Reasons) != 1 || !strings.Contains(b.Reasons[0], "n1") {
		t.Fatalf("reasons = %v, want the declaring node named", b.Reasons)
	}
}
