package telemetry

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Bounded slog ring: the last N log records at every level, retained in
// memory so an incident bundle carries the logs that led up to the trip.
// The ring rides as a tee — a handler that records into the ring and
// forwards to whatever handler the process already logs through — so
// arming the flight recorder never changes what the operator sees on
// stderr, it only keeps a copy.

// DefaultLogRing is the retained log-record count.
const DefaultLogRing = 256

// LogRecord is one retained log record, flattened for JSON bundles.
type LogRecord struct {
	TMS   int64             `json:"t_ms"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// LogRing retains the last capacity log records. All methods are safe
// for concurrent use and safe on a nil receiver.
type LogRing struct {
	mu   sync.Mutex
	buf  []LogRecord
	next int
	n    int
}

// NewLogRing creates a ring retaining the last capacity records
// (capacity <= 0 selects DefaultLogRing).
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = DefaultLogRing
	}
	return &LogRing{buf: make([]LogRecord, capacity)}
}

func (r *LogRing) add(rec LogRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of retained records (0 on a nil receiver).
func (r *LogRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained records, oldest first. Safe on a nil
// receiver (nil slice).
func (r *LogRing) Snapshot() []LogRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LogRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Wrap tees logger through the ring: the returned logger records every
// record (all levels) into the ring and forwards to logger's own handler
// at its own level gate. A nil logger yields a ring-only logger, so
// components log into the flight recorder even when the process is
// otherwise silent. Wrapping an already-wrapped logger over the same
// ring returns it unchanged (no double recording). Safe on a nil
// receiver (returns logger, or the nop logger when that is nil too).
func (r *LogRing) Wrap(logger *slog.Logger) *slog.Logger {
	if r == nil {
		if logger == nil {
			return NopLogger()
		}
		return logger
	}
	var next slog.Handler
	if logger != nil {
		next = logger.Handler()
	}
	if h, ok := next.(*ringHandler); ok && h.ring == r {
		return logger
	}
	return slog.New(&ringHandler{ring: r, next: next})
}

// ringHandler is the tee: every record lands in the ring, and records
// the wrapped handler's level gate admits are forwarded to it.
type ringHandler struct {
	ring   *LogRing
	next   slog.Handler
	attrs  []slog.Attr
	groups []string
}

// Enabled admits every level — the ring is a flight recorder, and the
// wrapped handler applies its own gate at forward time.
func (h *ringHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *ringHandler) Handle(ctx context.Context, rec slog.Record) error {
	lr := LogRecord{
		TMS:   rec.Time.UnixMilli(),
		Level: rec.Level.String(),
		Msg:   rec.Message,
	}
	if rec.Time.IsZero() {
		lr.TMS = time.Now().UnixMilli()
	}
	if len(h.attrs) > 0 || rec.NumAttrs() > 0 {
		lr.Attrs = make(map[string]string, len(h.attrs)+rec.NumAttrs())
		prefix := ""
		if len(h.groups) > 0 {
			prefix = strings.Join(h.groups, ".") + "."
		}
		for _, a := range h.attrs {
			lr.Attrs[prefix+a.Key] = a.Value.Resolve().String()
		}
		rec.Attrs(func(a slog.Attr) bool {
			lr.Attrs[prefix+a.Key] = a.Value.Resolve().String()
			return true
		})
	}
	h.ring.add(lr)
	if h.next != nil && h.next.Enabled(ctx, rec.Level) {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &ringHandler{ring: h.ring, groups: h.groups}
	nh.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	if h.next != nil {
		nh.next = h.next.WithAttrs(attrs)
	}
	return nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	nh := &ringHandler{ring: h.ring, attrs: h.attrs}
	nh.groups = append(append([]string{}, h.groups...), name)
	if h.next != nil {
		nh.next = h.next.WithGroup(name)
	}
	return nh
}

// EnableLogRing attaches a bounded log ring to the registry (the flight
// recorder's log capture; EnableFlightRecorder calls this itself).
// capacity <= 0 selects DefaultLogRing. Repeated calls return the
// existing ring; nil registries return nil.
func (r *Registry) EnableLogRing(capacity int) *LogRing {
	if r == nil {
		return nil
	}
	if lr := r.logring.Load(); lr != nil {
		return lr
	}
	lr := NewLogRing(capacity)
	if !r.logring.CompareAndSwap(nil, lr) {
		return r.logring.Load()
	}
	return lr
}

// LogRing returns the attached log ring (nil until EnableLogRing). Safe
// on a nil registry.
func (r *Registry) LogRing() *LogRing {
	if r == nil {
		return nil
	}
	return r.logring.Load()
}
