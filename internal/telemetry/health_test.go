package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the watchdog goroutine logs
// into it while the test polls String().
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusDegraded, StatusStalled} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v → %s → %v", s, b, got)
		}
	}
	var bad Status
	if err := json.Unmarshal([]byte(`"wedged"`), &bad); err == nil {
		t.Error("accepted unknown status string")
	}
}

func TestHealthNil(t *testing.T) {
	var h *Health
	rep := h.Evaluate()
	if rep.Status != StatusOK || len(rep.Tiers) != 0 {
		t.Errorf("nil health report = %+v", rep)
	}
	h.AddRule(Rule{})
	h.Start(time.Millisecond)
	h.Close()
}

// stallFixture wires a synthetic pipeline stage whose input and output
// counters the test drives directly — fault injection without a real
// pipeline.
type stallFixture struct {
	reg     *Registry
	s       *Sampler
	h       *Health
	in, out atomic.Int64
}

func newStallFixture(t *testing.T, logger *slog.Logger) *stallFixture {
	t.Helper()
	f := &stallFixture{reg: NewRegistry()}
	f.reg.GaugeFunc("fsmon.aggregator.pipeline.store.in", func() float64 { return float64(f.in.Load()) })
	f.reg.GaugeFunc("fsmon.aggregator.pipeline.store.out", func() float64 { return float64(f.out.Load()) })
	f.s = startStoppedSampler(t, f.reg, 32)
	f.h = NewHealth(f.s, HealthOptions{Windows: 3, Logger: logger})
	f.reg.SetHealth(f.h)
	t.Cleanup(f.h.Close)
	return f
}

// tick advances the synthetic stage by din/dout and takes one sample.
func (f *stallFixture) tick(din, dout int64) {
	f.in.Add(din)
	f.out.Add(dout)
	f.s.SampleNow()
}

// TestHealthStallDetection drives the built-in stall rule through the
// full lifecycle: healthy flow → injected stall (input advances, output
// frozen) → recovery.
func TestHealthStallDetection(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	f := newStallFixture(t, logger)

	// Healthy: both sides advance.
	for i := 0; i < 4; i++ {
		f.tick(10, 10)
	}
	if rep := f.h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("healthy flow reported %v: %+v", rep.Status, rep.Tiers)
	}

	// Fault injection: the stage keeps accepting but stops emitting.
	// Not yet K windows: must not page early.
	f.tick(10, 0)
	f.tick(10, 0)
	if rep := f.h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("stall reported after only 2 windows: %+v", rep.Tiers)
	}
	f.tick(10, 0)
	rep := f.h.Evaluate()
	if rep.Status != StatusStalled {
		t.Fatalf("3-window stall not detected: %+v", rep.Tiers)
	}
	found := false
	for _, v := range rep.Tiers {
		if v.Tier == "aggregator" && v.Status == StatusStalled {
			found = true
			if len(v.Reasons) == 0 || !strings.Contains(v.Reasons[0], "store") {
				t.Errorf("stall reason does not name the stage: %v", v.Reasons)
			}
		}
	}
	if !found {
		t.Fatalf("no stalled aggregator verdict in %+v", rep.Tiers)
	}
	if !strings.Contains(logBuf.String(), "tier health transition") {
		t.Error("stall transition not logged")
	}

	// Recovery: output drains again.
	logBuf.Reset()
	f.tick(10, 40)
	if rep := f.h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("recovery not detected: %+v", rep.Tiers)
	}
	if !strings.Contains(logBuf.String(), "tier recovered") {
		t.Error("recovery transition not logged")
	}
}

// TestHealthzFlips is the acceptance check: a served /healthz answers 200
// while healthy and flips to 503 when a fault-injected stall wedges a
// pipeline stage — the orchestrator-facing contract.
func TestHealthzFlips(t *testing.T) {
	f := newStallFixture(t, nil)
	srv, err := Serve("127.0.0.1:0", f.reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/healthz"

	for i := 0; i < 4; i++ {
		f.tick(10, 10)
	}
	rep, ok, err := FetchHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || rep.Status != StatusOK {
		t.Fatalf("healthy endpoint: ok=%v status=%v", ok, rep.Status)
	}
	if rep.Samples == 0 {
		t.Error("report carries no sample count")
	}

	for i := 0; i < 3; i++ {
		f.tick(10, 0) // wedge the stage
	}
	rep, ok, err = FetchHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if ok || rep.Status != StatusStalled {
		t.Fatalf("stalled endpoint: ok=%v status=%v tiers=%+v", ok, rep.Status, rep.Tiers)
	}

	f.tick(10, 40) // drain
	rep, ok, err = FetchHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || rep.Status != StatusOK {
		t.Fatalf("recovered endpoint: ok=%v status=%v", ok, rep.Status)
	}
}

// TestHealthQueueSaturation: a subscription queue pinned at capacity for
// K windows degrades its tier; dipping below the threshold clears it.
func TestHealthQueueSaturation(t *testing.T) {
	reg := NewRegistry()
	var depth atomic.Int64
	reg.GaugeFunc("fsmon.consumer.sub.queue_depth", func() float64 { return float64(depth.Load()) })
	reg.GaugeFunc("fsmon.consumer.sub.queue_cap", func() float64 { return 100 })
	s := startStoppedSampler(t, reg, 16)
	h := NewHealth(s, HealthOptions{Windows: 3})
	defer h.Close()

	depth.Store(95)
	for i := 0; i < 3; i++ {
		s.SampleNow()
	}
	rep := h.Evaluate()
	if rep.Status != StatusDegraded {
		t.Fatalf("saturated queue reported %v: %+v", rep.Status, rep.Tiers)
	}
	depth.Store(10)
	s.SampleNow()
	if rep := h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("drained queue still %v: %+v", rep.Status, rep.Tiers)
	}
}

// TestHealthGrowthAndErrorRules: cursor-lag growth and fid2path error
// spikes degrade; flat series stay ok.
func TestHealthGrowthAndErrorRules(t *testing.T) {
	reg := NewRegistry()
	var lag, errs atomic.Int64
	reg.GaugeFunc("fsmon.consumer.cursor_lag.p0", func() float64 { return float64(lag.Load()) })
	reg.GaugeFunc("fsmon.collector.mdt0.resolver.fid2path_errors", func() float64 { return float64(errs.Load()) })
	s := startStoppedSampler(t, reg, 16)
	h := NewHealth(s, HealthOptions{Windows: 3, ErrorRatePerSec: 5})
	defer h.Close()

	s.SampleNow()
	for i := 0; i < 3; i++ {
		lag.Add(100)
		s.SampleNow()
		time.Sleep(2 * time.Millisecond)
	}
	rep := h.Evaluate()
	degraded := map[string]bool{}
	for _, v := range rep.Tiers {
		degraded[v.Tier] = v.Status == StatusDegraded
	}
	if !degraded["consumer"] {
		t.Errorf("growing cursor lag not flagged: %+v", rep.Tiers)
	}
	if degraded["collector.mdt0"] {
		t.Errorf("flat error counter wrongly flagged: %+v", rep.Tiers)
	}

	// A hard error burst within one sample interval trips the spike rule.
	errs.Add(100000)
	s.SampleNow()
	rep = h.Evaluate()
	spiked := false
	for _, v := range rep.Tiers {
		if v.Tier == "collector.mdt0" && v.Status == StatusDegraded {
			spiked = true
		}
	}
	if !spiked {
		t.Errorf("error spike not flagged: %+v", rep.Tiers)
	}
}

// TestHealthWatchdogRuns: Start evaluates on its own ticker, so
// transitions are observed (and logged) with nobody polling.
func TestHealthWatchdogRuns(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	f := newStallFixture(t, logger)
	for i := 0; i < 4; i++ {
		f.tick(10, 0)
	}
	f.h.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(logBuf.String(), "tier health transition") {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watchdog never logged the stall")
}

// TestHealthCustomRule: AddRule extends the rule set.
func TestHealthCustomRule(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fsmon.custom.thing").Add(1)
	s := startStoppedSampler(t, reg, 4)
	s.SampleNow()
	h := NewHealth(s, HealthOptions{})
	defer h.Close()
	h.AddRule(Rule{Name: "always-degraded", Eval: func(*Sampler, HealthOptions) []Finding {
		return []Finding{{Tier: "custom", Status: StatusDegraded, Reason: "injected"}}
	}})
	rep := h.Evaluate()
	if rep.Status != StatusDegraded {
		t.Fatalf("custom rule not evaluated: %+v", rep)
	}
}

// TestHealthHeartbeatLapse: a cluster node whose peer-heartbeat age
// crosses HeartbeatLapseMS degrades the cluster tier; a fresh heartbeat
// clears it.
func TestHealthHeartbeatLapse(t *testing.T) {
	reg := NewRegistry()
	var ageMS atomic.Int64
	reg.GaugeFunc("fsmon.cluster.n0.heartbeat_age_ms", func() float64 { return float64(ageMS.Load()) })
	s := startStoppedSampler(t, reg, 16)
	h := NewHealth(s, HealthOptions{HeartbeatLapseMS: 500})
	defer h.Close()

	ageMS.Store(40)
	s.SampleNow()
	if rep := h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("fresh heartbeat reported %v: %+v", rep.Status, rep.Tiers)
	}

	ageMS.Store(750)
	s.SampleNow()
	rep := h.Evaluate()
	if rep.Status != StatusDegraded {
		t.Fatalf("lapsed heartbeat reported %v: %+v", rep.Status, rep.Tiers)
	}
	found := false
	for _, v := range rep.Tiers {
		if v.Tier == "cluster" && v.Status == StatusDegraded {
			found = true
			if len(v.Reasons) == 0 || !strings.Contains(v.Reasons[0], "heartbeat") {
				t.Errorf("cluster verdict lacks heartbeat reason: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("cluster tier not degraded: %+v", rep.Tiers)
	}

	// The node hears a peer again: the next sample clears the verdict.
	ageMS.Store(10)
	s.SampleNow()
	if rep := h.Evaluate(); rep.Status != StatusOK {
		t.Fatalf("recovered heartbeat still %v: %+v", rep.Status, rep.Tiers)
	}
}
