package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Delivery-conservation audit: per-partition flow counters at every tier
// boundary of the scalable pipeline (captured → published → stored →
// republished → delivered) plus per-lane sequence gap/dup detectors at
// the store append and consumer dedup points. The paper's central claim
// is lossless monitoring; the audit turns that claim into an invariant a
// running deployment can check — in steady state every tier's total
// matches the one before it, and a sequence lane that skips or repeats a
// stride is a violation the watchdog surfaces within one sampler window.
//
// The auditor is one shared structure per registry (EnableAudit), updated
// with single atomic adds from every component, and exported as
// fsmon.audit.* gauges so the conservation-violation health rule and the
// audit-smoke CI gate read it like any other metric.

// Audit accumulates tier-boundary flow counts and sequence-lane
// violations. All methods are safe for concurrent use and safe on a nil
// receiver — components thread a possibly-nil *Audit exactly like the
// registry's other handles.
type Audit struct {
	parts int

	captured  atomic.Uint64 // events entering the pipeline (collector resolve)
	published atomic.Uint64 // events accepted by the collectors' publish

	stored      []atomic.Uint64 // per-partition reliable-store appends
	republished []atomic.Uint64 // per-partition republishes toward consumers
	delivered   []atomic.Uint64 // per-partition consumer acceptances (post-dedup)

	// Per-lane high-water marks for the sequence detectors. Store lanes
	// are written by exactly one owner at a time (partition ownership);
	// deliver lanes by each consumer's dedup loop.
	storeLast   []atomic.Uint64
	deliverLast []atomic.Uint64

	gaps       atomic.Uint64 // lane skipped >= 1 stride (lost events)
	dups       atomic.Uint64 // store lane re-appended an already-assigned seq
	violations atomic.Uint64 // gaps + dups: what the watchdog rule fires on
}

// NewAudit creates an auditor over parts store partitions (parts < 1 is
// raised to 1).
func NewAudit(parts int) *Audit {
	if parts < 1 {
		parts = 1
	}
	return &Audit{
		parts:       parts,
		stored:      make([]atomic.Uint64, parts),
		republished: make([]atomic.Uint64, parts),
		delivered:   make([]atomic.Uint64, parts),
		storeLast:   make([]atomic.Uint64, parts),
		deliverLast: make([]atomic.Uint64, parts),
	}
}

// Parts returns the partition count (0 on a nil receiver).
func (a *Audit) Parts() int {
	if a == nil {
		return 0
	}
	return a.parts
}

// lane clamps a partition index into range so a miswired caller skews one
// lane instead of panicking the pipeline.
func (a *Audit) lane(part int) int {
	if part < 0 || part >= a.parts {
		return 0
	}
	return part
}

// Captured counts n events entering the pipeline at the collectors.
func (a *Audit) Captured(n int) {
	if a == nil || n <= 0 {
		return
	}
	a.captured.Add(uint64(n))
}

// Published counts n events accepted by a collector publish.
func (a *Audit) Published(n int) {
	if a == nil || n <= 0 {
		return
	}
	a.published.Add(uint64(n))
}

// Stored counts n events appended to partition part's reliable store.
func (a *Audit) Stored(part, n int) {
	if a == nil || n <= 0 {
		return
	}
	a.stored[a.lane(part)].Add(uint64(n))
}

// Republished counts n events republished from partition part toward
// consumers.
func (a *Audit) Republished(part, n int) {
	if a == nil || n <= 0 {
		return
	}
	a.republished[a.lane(part)].Add(uint64(n))
}

// Delivered counts n events a consumer accepted for partition part at its
// dedup point (before subscription filtering, so conservation holds for
// any filter).
func (a *Audit) Delivered(part, n int) {
	if a == nil || n <= 0 {
		return
	}
	a.delivered[a.lane(part)].Add(uint64(n))
}

// StoreSeq audits one store append on partition part's sequence lane:
// n events starting at seq first, the lane advancing by stride per event.
// The lane must continue exactly one stride past its previous high water —
// a first seq beyond that is a gap (events skipped, e.g. a handoff that
// lost journal tail), at or below it a duplicate append. The first append
// on a lane only sets the high water.
func (a *Audit) StoreSeq(part int, first uint64, n int, stride uint64) {
	if a == nil || n <= 0 || stride == 0 || first == 0 {
		return
	}
	lane := &a.storeLast[a.lane(part)]
	last := first + uint64(n-1)*stride
	for {
		prev := lane.Load()
		if prev != 0 {
			switch {
			case first > prev+stride:
				a.gaps.Add((first - prev - stride) / stride)
				a.violations.Add(1)
			case first <= prev:
				a.dups.Add(1)
				a.violations.Add(1)
				if last <= prev {
					return // replayed range, high water unchanged
				}
			}
		}
		if lane.CompareAndSwap(prev, last) {
			return
		}
	}
}

// DeliverSeq audits one delivered event on partition part's sequence lane
// at the consumer dedup point. The consumer's dedup already discards
// at-or-below-cursor seqs (expected on recovery replay — not a
// violation), so only forward jumps over a stride count: events the store
// assigned but the consumer never saw.
func (a *Audit) DeliverSeq(part int, seq, stride uint64) {
	if a == nil || stride == 0 || seq == 0 {
		return
	}
	lane := &a.deliverLast[a.lane(part)]
	for {
		prev := lane.Load()
		if seq <= prev {
			return
		}
		if lane.CompareAndSwap(prev, seq) {
			if prev != 0 && seq > prev+stride {
				a.gaps.Add((seq - prev - stride) / stride)
				a.violations.Add(1)
			}
			return
		}
	}
}

// Violations returns the lifetime gap+dup detection count (0 on nil).
func (a *Audit) Violations() uint64 {
	if a == nil {
		return 0
	}
	return a.violations.Load()
}

// AuditSnapshot is a point-in-time view of the conservation counters.
type AuditSnapshot struct {
	Captured    uint64   `json:"captured"`
	Published   uint64   `json:"published"`
	Stored      uint64   `json:"stored"`
	Republished uint64   `json:"republished"`
	Delivered   uint64   `json:"delivered"`
	PerPart     []uint64 `json:"stored_per_part,omitempty"`
	Gaps        uint64   `json:"seq_gaps"`
	Dups        uint64   `json:"seq_dups"`
	Violations  uint64   `json:"violations"`
}

// Snapshot reads every counter (zero value on a nil receiver).
func (a *Audit) Snapshot() AuditSnapshot {
	var s AuditSnapshot
	if a == nil {
		return s
	}
	s.Captured = a.captured.Load()
	s.Published = a.published.Load()
	s.PerPart = make([]uint64, a.parts)
	for i := 0; i < a.parts; i++ {
		s.PerPart[i] = a.stored[i].Load()
		s.Stored += s.PerPart[i]
		s.Republished += a.republished[i].Load()
		s.Delivered += a.delivered[i].Load()
	}
	s.Gaps = a.gaps.Load()
	s.Dups = a.dups.Load()
	s.Violations = a.violations.Load()
	return s
}

// Balance returns the largest absolute imbalance across adjacent tier
// boundaries (captured↔published, published↔stored, stored↔republished,
// republished↔delivered, per consumer count). In a quiesced single-consumer
// pipeline it must be zero — the audit-smoke gate and the steady-state
// tests assert exactly that. consumers scales the delivered leg (each
// attached consumer counts every event once); pass 1 for the common case.
func (a *Audit) Balance(consumers int) int64 {
	if a == nil {
		return 0
	}
	if consumers < 1 {
		consumers = 1
	}
	s := a.Snapshot()
	legs := [...]int64{
		int64(s.Captured) - int64(s.Published),
		int64(s.Published) - int64(s.Stored),
		int64(s.Stored) - int64(s.Republished),
		int64(s.Republished) - int64(s.Delivered)/int64(consumers),
	}
	var worst int64
	for _, d := range legs {
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// EnableAudit attaches a delivery-conservation auditor over parts store
// partitions to the registry and mirrors it as fsmon.audit.* gauges
// (totals, per-partition stored/republished/delivered lanes, and the
// gap/dup/violation detectors the conservation-violation watchdog rule
// reads). Repeated calls return the existing auditor; nil registries
// return nil (a no-op auditor).
func (r *Registry) EnableAudit(parts int) *Audit {
	if r == nil {
		return nil
	}
	if a := r.audit.Load(); a != nil {
		return a
	}
	a := NewAudit(parts)
	if !r.audit.CompareAndSwap(nil, a) {
		return r.audit.Load()
	}
	r.GaugeFunc("fsmon.audit.captured", func() float64 { return float64(a.captured.Load()) })
	r.GaugeFunc("fsmon.audit.published", func() float64 { return float64(a.published.Load()) })
	r.GaugeFunc("fsmon.audit.stored", func() float64 { return float64(a.Snapshot().Stored) })
	r.GaugeFunc("fsmon.audit.republished", func() float64 { return float64(a.Snapshot().Republished) })
	r.GaugeFunc("fsmon.audit.delivered", func() float64 { return float64(a.Snapshot().Delivered) })
	r.GaugeFunc("fsmon.audit.seq_gaps", func() float64 { return float64(a.gaps.Load()) })
	r.GaugeFunc("fsmon.audit.seq_dups", func() float64 { return float64(a.dups.Load()) })
	r.GaugeFunc("fsmon.audit.violations", func() float64 { return float64(a.violations.Load()) })
	for p := 0; p < a.parts; p++ {
		p := p
		r.GaugeFunc(fmt.Sprintf("fsmon.audit.stored.p%d", p),
			func() float64 { return float64(a.stored[p].Load()) })
		r.GaugeFunc(fmt.Sprintf("fsmon.audit.republished.p%d", p),
			func() float64 { return float64(a.republished[p].Load()) })
		r.GaugeFunc(fmt.Sprintf("fsmon.audit.delivered.p%d", p),
			func() float64 { return float64(a.delivered[p].Load()) })
	}
	return a
}

// Audit returns the attached auditor (nil until EnableAudit). Safe on a
// nil registry.
func (r *Registry) Audit() *Audit {
	if r == nil {
		return nil
	}
	return r.audit.Load()
}
