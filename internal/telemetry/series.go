package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Time-series retention: a background sampler snapshots the registry on a
// fixed interval into a bounded ring, and derived views turn the retained
// window into the signals a point-in-time snapshot cannot give — per-second
// rates for monotonic counters (events/s per tier, fid2path/s, store
// appends/s), windowed min/max/delta for gauges, and the per-interval
// deltas the watchdog health rules evaluate. Related monitoring systems
// make exactly this their centerpiece (MELT's aggregated time-series
// health views; Doreau's lag accounting over continuous activity streams);
// here it is the substrate /metrics/history, Rates(), and /healthz stand
// on.

// Sampler defaults.
const (
	// DefaultSeriesLen is the retained sample count — 256 samples at the
	// default interval is a bit over four minutes of history.
	DefaultSeriesLen = 256
	// DefaultSampleInterval is the tick between registry snapshots.
	DefaultSampleInterval = time.Second
)

// Sample is one sampler tick: the registry snapshot flattened to scalars.
// Histograms flatten to "<name>.count", ".p50", ".p95", ".p99", ".max"
// (so a rate over ".count" is observations/s and tail quantiles chart
// over time).
type Sample struct {
	T      time.Time          `json:"-"`
	TMS    int64              `json:"t_ms"`
	Values map[string]float64 `json:"values"`
}

// SeriesPoint is one metric's value at one sample instant.
type SeriesPoint struct {
	T time.Time
	V float64
}

// Window summarizes one metric over the retained samples.
type Window struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Delta float64 `json:"delta"` // newest - oldest
}

// Sampler fills a fixed-size ring with registry snapshots on a background
// ticker. All methods are safe for concurrent use and safe on a nil
// receiver (empty views), mirroring the registry's nil discipline.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	ring []Sample
	next int // ring slot the next sample lands in
	n    int // filled slots (<= len(ring))

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartSampler attaches a background sampler to the registry and starts
// it; interval <= 0 selects DefaultSampleInterval, capacity <= 0 selects
// DefaultSeriesLen. A registry holds at most one sampler — subsequent
// calls return the existing one. Returns nil on a nil registry.
func (r *Registry) StartSampler(interval time.Duration, capacity int) *Sampler {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSeriesLen
	}
	s := &Sampler{
		reg:      r,
		interval: interval,
		ring:     make([]Sample, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if !r.sampler.CompareAndSwap(nil, s) {
		return r.sampler.Load()
	}
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.SampleNow()
		}
	}
}

// Close stops the background ticker. The retained history stays readable.
// Safe on a nil receiver and safe to call more than once.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Interval returns the sampling interval (0 on a nil receiver).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// SampleNow takes one sample immediately — the deterministic path tests
// and the watchdog use instead of waiting for the ticker. Safe on a nil
// receiver.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	sample := Sample{T: time.Now(), Values: flattenSnapshot(s.reg.Snapshot())}
	sample.TMS = sample.T.UnixMilli()
	s.mu.Lock()
	s.ring[s.next] = sample
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// flattenSnapshot reduces a registry snapshot to scalars, expanding each
// histogram into its count and quantile fields.
func flattenSnapshot(snap map[string]any) map[string]float64 {
	out := make(map[string]float64, len(snap))
	for name, v := range snap {
		switch v := v.(type) {
		case float64:
			out[name] = v
		case HistogramSnapshot:
			out[name+".count"] = float64(v.Count)
			out[name+".p50"] = v.P50
			out[name+".p95"] = v.P95
			out[name+".p99"] = v.P99
			out[name+".max"] = float64(v.Max)
		}
	}
	return out
}

// Len returns the number of retained samples.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// History returns the retained samples, oldest first. The slice and its
// maps are snapshots safe for the caller to retain.
func (s *Sampler) History() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.historyLocked()
}

func (s *Sampler) historyLocked() []Sample {
	out := make([]Sample, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Series returns one metric's retained points, oldest first. Samples in
// which the metric was absent (not yet registered) are skipped.
func (s *Sampler) Series(name string) []SeriesPoint {
	if s == nil {
		return nil
	}
	var out []SeriesPoint
	for _, sm := range s.History() {
		if v, ok := sm.Values[name]; ok {
			out = append(out, SeriesPoint{T: sm.T, V: v})
		}
	}
	return out
}

// Deltas returns the metric's last k per-interval deltas, oldest first
// (fewer when the history is shorter). Health rules evaluate these: k
// consecutive positive input deltas with zero output deltas is a stall.
func (s *Sampler) Deltas(name string, k int) []float64 {
	pts := s.Series(name)
	if len(pts) < 2 {
		return nil
	}
	first := len(pts) - 1 - k
	if first < 0 {
		first = 0
	}
	out := make([]float64, 0, len(pts)-1-first)
	for i := first; i < len(pts)-1; i++ {
		out = append(out, pts[i+1].V-pts[i].V)
	}
	return out
}

// Rate returns the metric's average per-second rate over the retained
// window. ok is false when fewer than two samples exist or the series is
// not monotonically non-decreasing — counters and counter mirrors are
// monotone, so monotonicity is how the sampler tells a rate-meaningful
// series from a free-moving gauge.
func (s *Sampler) Rate(name string) (perSec float64, ok bool) {
	pts := s.Series(name)
	return rateOf(pts)
}

func rateOf(pts []SeriesPoint) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V {
			return 0, false
		}
	}
	dt := pts[len(pts)-1].T.Sub(pts[0].T).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return (pts[len(pts)-1].V - pts[0].V) / dt, true
}

// Rates derives the per-second rate of every monotone scalar in the
// retained window — ev/s per tier, fid2path/s, store appends/s — keyed by
// metric name. Non-monotone series (true gauges) are omitted; use
// Windows for those.
func (s *Sampler) Rates() map[string]float64 {
	out := map[string]float64{}
	for _, name := range s.names() {
		if r, ok := s.Rate(name); ok {
			out[name] = r
		}
	}
	return out
}

// Windows summarizes every scalar over the retained window (min, max,
// newest-oldest delta) — the gauge-side companion to Rates.
func (s *Sampler) Windows() map[string]Window {
	out := map[string]Window{}
	for _, name := range s.names() {
		pts := s.Series(name)
		if len(pts) == 0 {
			continue
		}
		w := Window{Min: math.Inf(1), Max: math.Inf(-1)}
		for _, p := range pts {
			w.Min = math.Min(w.Min, p.V)
			w.Max = math.Max(w.Max, p.V)
		}
		w.Delta = pts[len(pts)-1].V - pts[0].V
		out[name] = w
	}
	return out
}

// names lists every metric name seen in the newest sample, sorted.
func (s *Sampler) names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	var latest map[string]float64
	if s.n > 0 {
		i := s.next - 1
		if i < 0 {
			i += len(s.ring)
		}
		latest = s.ring[i].Values
	}
	s.mu.Unlock()
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// tierOf maps a metric name to its tier label for per-tier health
// verdicts: "fsmon.collector.mdt0.resolver.fid2path_errors" →
// "collector.mdt0", "fsmon.aggregator.stored" → "aggregator",
// "fsmon.store.p1.appended" → "store". Names outside the fsmon namespace
// map to their first segment.
func tierOf(name string) string {
	segs := strings.Split(name, ".")
	if len(segs) > 1 && segs[0] == "fsmon" {
		segs = segs[1:]
	}
	if len(segs) == 0 {
		return name
	}
	tier := segs[0]
	// Instance-suffixed tiers keep the instance: collector.mdt0.
	if len(segs) > 1 && strings.HasPrefix(segs[1], "mdt") && isDigits(segs[1][3:]) {
		tier += "." + segs[1]
	}
	return tier
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
