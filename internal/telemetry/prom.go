package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (the 0.0.4 text format, which OpenMetrics
// scrapers also ingest): the registry's counters, gauges, and fixed-bucket
// histograms rendered as native families so the repo plugs into a real
// scrape stack with zero adapters. Name mangling is stable —
// "fsmon.collector.events" → "fsmon_collector_events_total" — so dashboards
// survive restarts and rebuilds.

// MangleName converts a dotted fsmon metric name to a Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_', and a leading
// digit is prefixed with '_'.
func MangleName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value in Prometheus text form.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format:
//
//   - counters as "<name>_total" counter families
//   - gauges and GaugeFunc mirrors as gauge families
//   - histograms as native histogram families with cumulative
//     "_bucket{le=...}" counts, the "+Inf" bucket, "_sum", and "_count",
//     plus a "<name>_max" gauge carrying the tracked maximum (the overflow
//     count is the "+Inf" bucket minus the last finite bucket)
//
// Families are emitted in sorted (mangled) name order. GaugeFuncs run
// outside the registry lock, like Snapshot. Safe on a nil registry
// (renders nothing).
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	names, slots := r.slots()
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	for _, i := range order {
		m := slots[i]
		mangled := MangleName(names[i])
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n",
				mangled, mangled, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
				mangled, mangled, m.gauge.Value())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
				mangled, mangled, promFloat(m.fn()))
		case m.hist != nil:
			err = writePromHistogram(w, mangled, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	bounds, counts := h.Buckets()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1] // overflow bucket
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, cum); err != nil {
		return err
	}
	// The tracked max rides along as a gauge: histograms cap quantile
	// interpolation at the last bound, so the max (with the +Inf bucket's
	// overflow count) is how an operator sees past the layout.
	_, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", name, name, h.Max())
	return err
}
