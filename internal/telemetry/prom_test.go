package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestMangleName(t *testing.T) {
	cases := map[string]string{
		"fsmon.collector.events":       "fsmon_collector_events",
		"fsmon.collector.mdt0.resolve": "fsmon_collector_mdt0_resolve",
		"fsmon.store.p1.appended":      "fsmon_store_p1_appended",
		"0weird":                       "_0weird",
		"a-b c":                        "a_b_c",
		"already_fine":                 "already_fine",
	}
	for in, want := range cases {
		if got := MangleName(in); got != want {
			t.Errorf("MangleName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition byte-for-byte for one
// registry of each instrument kind. Dashboards key on these names; drift
// here is a breaking change.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fsmon.collector.events").Add(7)
	reg.Gauge("fsmon.queue_depth").Set(3)
	reg.GaugeFunc("fsmon.utilization", func() float64 { return 0.5 })
	h := reg.Histogram("fsmon.store_us", []int64{10, 100})
	h.Observe(5)    // le=10
	h.Observe(50)   // le=100
	h.Observe(1000) // overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE fsmon_collector_events_total counter`,
		`fsmon_collector_events_total 7`,
		`# TYPE fsmon_queue_depth gauge`,
		`fsmon_queue_depth 3`,
		`# TYPE fsmon_store_us histogram`,
		`fsmon_store_us_bucket{le="10"} 1`,
		`fsmon_store_us_bucket{le="100"} 2`,
		`fsmon_store_us_bucket{le="+Inf"} 3`,
		`fsmon_store_us_sum 1055`,
		`fsmon_store_us_count 3`,
		`# TYPE fsmon_store_us_max gauge`,
		`fsmon_store_us_max 1000`,
		`# TYPE fsmon_utilization gauge`,
		`fsmon_utilization 0.5`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// promSample is one parsed text-format sample.
type promSample struct {
	name   string
	labels string // raw label block, "" when unlabeled
	value  float64
}

// parsePromText is a miniature parser for the Prometheus 0.0.4 text
// format, strict about the shape WritePrometheus must produce: every
// sample belongs to a preceding # TYPE family, names are valid, counters
// end in _total, and histogram families are internally consistent.
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	types := map[string]string{}
	var lastFamily string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown family type %q", ln+1, fields[3])
			}
			types[fields[2]] = fields[3]
			lastFamily = fields[2]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no sample value in %q", ln+1, line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name, labels := id, ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, id)
			}
			name, labels = id[:i], id[i+1:len(id)-1]
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		family := lastFamily
		switch types[family] {
		case "counter":
			if name != family {
				t.Fatalf("line %d: sample %q outside its counter family %q", ln+1, name, family)
			}
			if !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter %q does not end in _total", ln+1, name)
			}
		case "gauge":
			if name != family {
				t.Fatalf("line %d: sample %q outside its gauge family %q", ln+1, name, family)
			}
		case "histogram":
			switch name {
			case family + "_bucket", family + "_sum", family + "_count":
			default:
				t.Fatalf("line %d: sample %q outside its histogram family %q", ln+1, name, family)
			}
		default:
			t.Fatalf("line %d: sample %q before any # TYPE family", ln+1, name)
		}
		out = append(out, promSample{name: name, labels: labels, value: val})
	}
	return out
}

// TestWritePrometheusParses runs a realistic registry through the mini
// parser and checks histogram-family invariants: cumulative buckets ending
// in +Inf, bucket count equal to _count, and monotone non-decreasing
// cumulative counts.
func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fsmon.collector.mdt0.records").Add(100)
	reg.Gauge("fsmon.aggregator.sub.queue_depth").Set(12)
	reg.GaugeFunc("fsmon.process.heap_bytes", func() float64 { return 1e7 })
	h := reg.Histogram("fsmon.consumer.e2e_us", nil) // default latency buckets
	for i := int64(1); i < 2000; i *= 3 {
		h.Observe(i)
	}
	h.Observe(1 << 40) // deep overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	if len(samples) == 0 {
		t.Fatal("parser returned no samples")
	}

	const fam = "fsmon_consumer_e2e_us"
	var buckets []promSample
	var sum, count float64
	haveSum, haveCount, haveInf := false, false, false
	for _, s := range samples {
		switch s.name {
		case fam + "_bucket":
			buckets = append(buckets, s)
			if s.labels == `le="+Inf"` {
				haveInf = true
			}
		case fam + "_sum":
			sum, haveSum = s.value, true
		case fam + "_count":
			count, haveCount = s.value, true
		}
	}
	if !haveSum || !haveCount || !haveInf {
		t.Fatalf("histogram family incomplete: sum=%v count=%v +Inf=%v", haveSum, haveCount, haveInf)
	}
	if len(buckets) != len(LatencyBuckets)+1 {
		t.Errorf("bucket samples = %d, want %d", len(buckets), len(LatencyBuckets)+1)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].value < buckets[i-1].value {
			t.Errorf("bucket %d not cumulative: %v after %v", i, buckets[i].value, buckets[i-1].value)
		}
	}
	if last := buckets[len(buckets)-1]; last.value != count {
		t.Errorf("+Inf bucket %v != _count %v", last.value, count)
	}
	if sum < float64(uint64(1)<<40) {
		t.Errorf("_sum %v lost the overflow observation", sum)
	}

	// The snapshot and the exposition must agree on overflow accounting.
	snap := reg.Snapshot()["fsmon.consumer.e2e_us"].(HistogramSnapshot)
	if snap.Overflow == 0 {
		t.Error("snapshot overflow = 0, want the deep observation counted")
	}
}

// TestPromFloat covers the value rendering edge cases.
func TestPromFloat(t *testing.T) {
	inf := func(sign int) float64 { return float64(sign) * 1e308 * 10 }
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {3, "3"}, {-7, "-7"}, {0.5, "0.5"},
		{inf(1), "+Inf"}, {inf(-1), "-Inf"},
	}
	for _, c := range cases {
		if got := promFloat(c.v); got != c.want {
			t.Errorf("promFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := promFloat(nan()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

func nan() float64 { var z float64; return z / z }
