package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// expvarReg is the registry mirrored under expvar's "fsmon" variable.
// expvar.Publish panics on duplicate names, so the variable is published
// once and reads whatever registry was most recently served.
var expvarReg atomic.Pointer[Registry]

var publishExpvar = func() func() {
	done := false
	return func() {
		if done {
			return
		}
		done = true
		expvar.Publish("fsmon", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	}
}()

// Server is a live introspection endpoint over one registry: JSON
// snapshots at /metrics, the standard expvar surface at /debug/vars, and
// net/http/pprof under /debug/pprof/.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port; see Addr). The registry may be nil, in which case snapshots are
// empty but the endpoint — including pprof — still works.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	expvarReg.Store(reg)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		reg: reg,
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address, resolving ":0" to the bound port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// FetchSnapshot retrieves a /metrics snapshot from a running endpoint —
// the client half of the one-shot status dump (fsmon -status). Histogram
// values decode as map[string]any; WriteSnapshotText handles both forms.
func FetchSnapshot(url string) (map[string]any, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: %s: %s", url, resp.Status)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("telemetry: decode %s: %w", url, err)
	}
	return snap, nil
}
