package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// expvarReg is the registry mirrored under expvar's "fsmon" variable.
// expvar.Publish panics on duplicate names, so the variable is published
// once and reads whatever registry was most recently served.
var expvarReg atomic.Pointer[Registry]

var publishExpvar = func() func() {
	done := false
	return func() {
		if done {
			return
		}
		done = true
		expvar.Publish("fsmon", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	}
}()

// fetchClient is the shared bounded HTTP client behind every Fetch helper:
// a one-shot status query against a wedged endpoint must fail, not hang
// the caller forever.
var fetchClient = &http.Client{Timeout: 10 * time.Second}

// shutdownGrace bounds how long Close waits for in-flight scrapes to
// finish before hard-closing the server.
const shutdownGrace = 2 * time.Second

// Server is a live introspection endpoint over one registry: JSON
// snapshots at /metrics, retained time-series at /metrics/history,
// Prometheus text exposition at /metrics/prom, completed span traces at
// /traces, the watchdog verdict at /healthz, the standard expvar surface
// at /debug/vars, and net/http/pprof under /debug/pprof/.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// HistoryResponse is the /metrics/history JSON shape: the retained
// samples (oldest first), the sampling interval, and the derived
// per-second rates of every monotone series over the window.
type HistoryResponse struct {
	IntervalMS int64              `json:"interval_ms"`
	Samples    []Sample           `json:"samples"`
	Rates      map[string]float64 `json:"rates"`
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port; see Addr). The registry may be nil, in which case snapshots are
// empty but the endpoint — including pprof — still works. The history,
// trace, and health surfaces light up when a Sampler, TraceRing, or
// Health is attached to the registry; unattached they respond with their
// empty shapes rather than 404, so probes can be configured before the
// monitor is.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	expvarReg.Store(reg)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Sampler()
		resp := HistoryResponse{
			IntervalMS: s.Interval().Milliseconds(),
			Samples:    s.History(),
			Rates:      s.Rates(),
		}
		if resp.Samples == nil {
			resp.Samples = []Sample{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		// ?limit=N serves the newest N traces (newest first) without
		// copying the whole ring; unlimited keeps the historical
		// oldest-first full dump.
		traces := reg.Traces()
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			WriteChromeTrace(w, traces.SnapshotLimit(n))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, traces.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := reg.Health().Evaluate()
		w.Header().Set("Content-Type", "application/json")
		// Stalled is the orchestrator-actionable verdict: data is not
		// flowing. Degraded tiers still move events, so they stay 200 —
		// the report body carries the warning.
		if rep.Status == StatusStalled {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
	// The cluster observability plane: the federated member view (JSON and
	// node-labeled Prometheus text) and the worst-of health rollup. Absent
	// a federation (classic single-process deployments) the endpoints
	// answer 404 — "this monitor is not clustered" must not read as an
	// empty healthy cluster.
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		fed := reg.Federation()
		if fed == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fed.WriteClusterMetrics(w, reg.Audit())
	})
	mux.HandleFunc("/cluster/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		fed := reg.Federation()
		if fed == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fed.WritePrometheus(w)
	})
	mux.HandleFunc("/cluster/healthz", func(w http.ResponseWriter, r *http.Request) {
		fed := reg.Federation()
		if fed == nil {
			http.NotFound(w, r)
			return
		}
		rep := fed.Report()
		w.Header().Set("Content-Type", "application/json")
		// Unlike the local /healthz (503 only when a tier is wedged), the
		// cluster rollup 503s on any stalled-or-dead member: a silently
		// dead node is exactly what an orchestrator probes this for.
		if rep.Status == StatusStalled {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
	// The incident flight recorder: list retained bundles, fetch one by
	// ID, or POST a manual capture. Without a recorder the endpoints 404
	// — "no flight recorder armed" must not read as "no incidents".
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, r *http.Request) {
		fr := reg.Flight()
		if fr == nil {
			http.NotFound(w, r)
			return
		}
		list := fr.List()
		if list == nil {
			list = []IncidentInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(list)
	})
	mux.HandleFunc("/debug/incidents/", func(w http.ResponseWriter, r *http.Request) {
		fr := reg.Flight()
		if fr == nil {
			http.NotFound(w, r)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/debug/incidents/")
		if id == "trigger" {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "trigger requires POST", http.StatusMethodNotAllowed)
				return
			}
			info, err := fr.TriggerIncident("manual trigger via /debug/incidents")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data, err := fr.Read(info.ID)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			return
		}
		data, err := fr.Read(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		reg: reg,
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address, resolving ":0" to the bound port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down: it stops accepting connections and
// drains in-flight requests for a short grace period before hard-closing
// whatever remains — a mid-scrape Close returns complete responses
// instead of resets.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// FetchSnapshot retrieves a /metrics snapshot from a running endpoint —
// the client half of the one-shot status dump (fsmon -status). Histogram
// values decode as map[string]any; WriteSnapshotText handles both forms.
// The shared bounded client caps the round trip, so a wedged endpoint
// fails the fetch rather than hanging it.
func FetchSnapshot(url string) (map[string]any, error) {
	var snap map[string]any
	if err := fetchJSON(url, &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// FetchHistory retrieves the retained time-series and derived rates from
// a running endpoint's /metrics/history.
func FetchHistory(url string) (HistoryResponse, error) {
	var hist HistoryResponse
	err := fetchJSON(url, &hist)
	return hist, err
}

// FetchHealth retrieves a /healthz verdict. The report is returned even
// when the endpoint answers 503 (stalled) — only transport and decode
// failures are errors. ok mirrors the HTTP verdict: true for 200.
func FetchHealth(url string) (rep HealthReport, ok bool, err error) {
	resp, err := fetchClient.Get(url)
	if err != nil {
		return rep, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, false, fmt.Errorf("telemetry: %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, false, fmt.Errorf("telemetry: decode %s: %w", url, err)
	}
	return rep, resp.StatusCode == http.StatusOK, nil
}

// FetchClusterHealth retrieves a /cluster/healthz rollup. Like
// FetchHealth, a 503 (dead or stalled member) still returns the report;
// ok mirrors the HTTP verdict.
func FetchClusterHealth(url string) (rep ClusterReport, ok bool, err error) {
	resp, err := fetchClient.Get(url)
	if err != nil {
		return rep, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, false, fmt.Errorf("telemetry: %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, false, fmt.Errorf("telemetry: decode %s: %w", url, err)
	}
	return rep, resp.StatusCode == http.StatusOK, nil
}

// FetchIncidents retrieves a running endpoint's /debug/incidents
// listing (newest first).
func FetchIncidents(url string) ([]IncidentInfo, error) {
	var list []IncidentInfo
	if err := fetchJSON(url, &list); err != nil {
		return nil, err
	}
	return list, nil
}

// TriggerRemoteIncident POSTs a manual capture to a running endpoint's
// /debug/incidents/trigger and returns the captured bundle JSON — the
// client half of the fsmon -incident one-shot grab.
func TriggerRemoteIncident(url string) ([]byte, error) {
	resp, err := fetchClient.Post(url, "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("telemetry: read %s: %w", url, err)
	}
	return data, nil
}

func fetchJSON(url string, into any) error {
	resp, err := fetchClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("telemetry: %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("telemetry: decode %s: %w", url, err)
	}
	return nil
}
