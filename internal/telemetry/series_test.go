package telemetry

import (
	"sync"
	"testing"
	"time"
)

// startStoppedSampler attaches a sampler without letting its ticker race
// the test: a huge interval means only explicit SampleNow calls add
// samples.
func startStoppedSampler(t *testing.T, reg *Registry, capacity int) *Sampler {
	t.Helper()
	s := reg.StartSampler(time.Hour, capacity)
	if s == nil {
		t.Fatal("StartSampler returned nil")
	}
	t.Cleanup(s.Close)
	return s
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.SampleNow()
	s.Close()
	if s.Len() != 0 || s.History() != nil || s.Series("x") != nil {
		t.Error("nil sampler views not empty")
	}
	if _, ok := s.Rate("x"); ok {
		t.Error("nil sampler derived a rate")
	}
	var r *Registry
	if r.StartSampler(0, 0) != nil {
		t.Error("nil registry produced a sampler")
	}
}

func TestSamplerSingleton(t *testing.T) {
	reg := NewRegistry()
	s := startStoppedSampler(t, reg, 8)
	if again := reg.StartSampler(time.Minute, 99); again != s {
		t.Error("second StartSampler did not return the existing sampler")
	}
	if reg.Sampler() != s {
		t.Error("Sampler() accessor disagrees")
	}
}

func TestSamplerRingAndHistory(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("fsmon.test.events")
	s := startStoppedSampler(t, reg, 4)

	for i := 0; i < 6; i++ {
		c.Add(10)
		s.SampleNow()
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", s.Len())
	}
	hist := s.History()
	if len(hist) != 4 {
		t.Fatalf("History len = %d, want 4", len(hist))
	}
	// Oldest-first: the retained window is samples 3..6 → values 30..60.
	for i, sm := range hist {
		want := float64(30 + 10*i)
		if got := sm.Values["fsmon.test.events"]; got != want {
			t.Errorf("sample %d value = %v, want %v", i, got, want)
		}
		if sm.TMS == 0 {
			t.Errorf("sample %d missing wall-clock stamp", i)
		}
	}
	pts := s.Series("fsmon.test.events")
	if len(pts) != 4 || pts[0].V != 30 || pts[3].V != 60 {
		t.Errorf("Series = %+v", pts)
	}
}

func TestSamplerRatesAndWindows(t *testing.T) {
	reg := NewRegistry()
	counter := reg.Counter("fsmon.test.mono")
	gauge := reg.Gauge("fsmon.test.wobble")
	s := startStoppedSampler(t, reg, 16)

	wobble := []int64{5, 9, 3, 7}
	for i := 0; i < 4; i++ {
		counter.Add(100)
		gauge.Set(wobble[i])
		s.SampleNow()
		time.Sleep(2 * time.Millisecond) // rates need dt > 0
	}

	rates := s.Rates()
	if _, ok := rates["fsmon.test.mono"]; !ok {
		t.Error("monotone counter missing from Rates")
	}
	if _, ok := rates["fsmon.test.wobble"]; ok {
		t.Error("non-monotone gauge wrongly rate-derived")
	}
	if r, ok := s.Rate("fsmon.test.mono"); !ok || r <= 0 {
		t.Errorf("Rate(mono) = %v, %v", r, ok)
	}

	w := s.Windows()["fsmon.test.wobble"]
	if w.Min != 3 || w.Max != 9 || w.Delta != 2 {
		t.Errorf("Window(wobble) = %+v, want min 3 max 9 delta 2", w)
	}

	d := s.Deltas("fsmon.test.mono", 2)
	if len(d) != 2 || d[0] != 100 || d[1] != 100 {
		t.Errorf("Deltas = %v, want [100 100]", d)
	}
}

func TestSamplerFlattensHistograms(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("fsmon.test.lat_us", nil)
	h.Observe(10)
	h.Observe(20)
	s := startStoppedSampler(t, reg, 4)
	s.SampleNow()
	vals := s.History()[0].Values
	if vals["fsmon.test.lat_us.count"] != 2 {
		t.Errorf("flattened count = %v", vals["fsmon.test.lat_us.count"])
	}
	for _, k := range []string{".p50", ".p95", ".p99", ".max"} {
		if _, ok := vals["fsmon.test.lat_us"+k]; !ok {
			t.Errorf("flattened sample missing %s", k)
		}
	}
}

// TestSamplerConcurrency exercises writers, the ticker, and every reader
// view at once — meaningful under -race.
func TestSamplerConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("fsmon.race.events")
	g := reg.Gauge("fsmon.race.depth")
	h := reg.Histogram("fsmon.race.lat", nil)
	s := reg.StartSampler(time.Millisecond, 32)
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(j % 100))
				h.Observe(int64(j % 1000))
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.SampleNow()
				_ = s.History()
				_ = s.Rates()
				_ = s.Windows()
				_ = s.Deltas("fsmon.race.events", 3)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Len() == 0 {
		t.Error("no samples retained")
	}
}

func TestTierOf(t *testing.T) {
	cases := map[string]string{
		"fsmon.collector.mdt0.resolver.fid2path_errors": "collector.mdt0",
		"fsmon.collector.mdt12.pipeline.resolve.in":     "collector.mdt12",
		"fsmon.aggregator.stored":                       "aggregator",
		"fsmon.store.p1.appended":                       "store",
		"fsmon.consumer.cursor_lag.p0":                  "consumer",
		"fsmon.process.heap_bytes":                      "process",
		"custom.thing":                                  "custom",
	}
	for in, want := range cases {
		if got := tierOf(in); got != want {
			t.Errorf("tierOf(%q) = %q, want %q", in, got, want)
		}
	}
}
