package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeSnapshotShape exercises the live endpoint end to end: serve a
// populated registry, fetch /metrics, and check the JSON shape a dashboard
// would parse — scalars as numbers, histograms as objects with the summary
// fields.
func TestServeSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("fsmon.test.events").Add(9)
	h := r.Histogram("fsmon.test.e2e_us", nil)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snap, err := FetchSnapshot("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap["fsmon.test.events"].(float64); !ok || v != 9 {
		t.Errorf("events = %#v, want 9", snap["fsmon.test.events"])
	}
	hist, ok := snap["fsmon.test.e2e_us"].(map[string]any)
	if !ok {
		t.Fatalf("histogram decoded as %#v", snap["fsmon.test.e2e_us"])
	}
	for _, k := range []string{"count", "mean", "p50", "p95", "p99", "max"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram JSON missing %q: %v", k, hist)
		}
	}
	if hist["count"] != float64(100) {
		t.Errorf("count = %v, want 100", hist["count"])
	}

	// The fetched (JSON-decoded) snapshot must render through the same
	// text dump as a live one — the fsmon -status path.
	var sb strings.Builder
	if err := WriteSnapshotText(&sb, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fsmon.test.events 9\n") {
		t.Errorf("text dump missing counter line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "fsmon.test.e2e_us count=100") {
		t.Errorf("text dump missing histogram line:\n%s", sb.String())
	}
}

// TestServeDebugSurfaces checks the expvar mirror and that pprof is wired.
func TestServeDebugSurfaces(t *testing.T) {
	r := NewRegistry()
	r.Gauge("fsmon.test.depth").Set(4)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	fsmon, ok := vars["fsmon"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing fsmon: %v", vars["fsmon"])
	}
	if fsmon["fsmon.test.depth"] != float64(4) {
		t.Errorf("expvar depth = %v, want 4", fsmon["fsmon.test.depth"])
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %s", pp.Status)
	}
}

// TestServeNilRegistry: the endpoint must work (empty snapshots) when no
// registry is attached, since pprof alone is worth serving.
func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap, err := FetchSnapshot("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Errorf("nil-registry snapshot = %v, want empty", snap)
	}
	// The PR-5 surfaces answer their empty shapes rather than 404 or 500.
	for _, path := range []string{"/metrics/history", "/metrics/prom", "/traces", "/healthz"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s on bare endpoint = %s, want 200", path, resp.Status)
		}
	}
}

// TestServeHistoryEndpoint: with a sampler attached, /metrics/history
// serves the retained window and derived rates; FetchHistory is its
// client half.
func TestServeHistoryEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("fsmon.test.flow")
	s := startStoppedSampler(t, reg, 16)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 3; i++ {
		c.Add(50)
		s.SampleNow()
		time.Sleep(2 * time.Millisecond)
	}
	hist, err := FetchHistory("http://" + srv.Addr() + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Samples) != 3 {
		t.Fatalf("history samples = %d, want 3", len(hist.Samples))
	}
	if hist.Samples[0].Values["fsmon.test.flow"] != 50 {
		t.Errorf("oldest sample = %v", hist.Samples[0].Values)
	}
	if hist.Samples[0].TMS == 0 {
		t.Error("sample timestamps lost in transit")
	}
	if r, ok := hist.Rates["fsmon.test.flow"]; !ok || r <= 0 {
		t.Errorf("derived rate = %v (present %v)", r, ok)
	}
	if hist.IntervalMS != time.Hour.Milliseconds() {
		t.Errorf("interval_ms = %d", hist.IntervalMS)
	}
}

// TestServePromEndpoint: /metrics/prom serves the exposition with the
// versioned content type and parseable text.
func TestServePromEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fsmon.test.events").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(body))
	found := false
	for _, s := range samples {
		if s.name == "fsmon_test_events_total" && s.value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("counter missing from exposition:\n%s", body)
	}
}

// TestServeTracesEndpoint: /traces dumps the registry ring as a Chrome
// trace document.
func TestServeTracesEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTracing(1, 8)
	reg.Traces().Add(Trace{ID: 7, Spans: []TraceSpan{{Tier: "collect", TS: 1000}}})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].Name != "process_name" || doc.TraceEvents[1].Name != "collect" {
		t.Errorf("trace dump = %+v", doc.TraceEvents)
	}
}
