package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestServeSnapshotShape exercises the live endpoint end to end: serve a
// populated registry, fetch /metrics, and check the JSON shape a dashboard
// would parse — scalars as numbers, histograms as objects with the summary
// fields.
func TestServeSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("fsmon.test.events").Add(9)
	h := r.Histogram("fsmon.test.e2e_us", nil)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snap, err := FetchSnapshot("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap["fsmon.test.events"].(float64); !ok || v != 9 {
		t.Errorf("events = %#v, want 9", snap["fsmon.test.events"])
	}
	hist, ok := snap["fsmon.test.e2e_us"].(map[string]any)
	if !ok {
		t.Fatalf("histogram decoded as %#v", snap["fsmon.test.e2e_us"])
	}
	for _, k := range []string{"count", "mean", "p50", "p95", "p99", "max"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram JSON missing %q: %v", k, hist)
		}
	}
	if hist["count"] != float64(100) {
		t.Errorf("count = %v, want 100", hist["count"])
	}

	// The fetched (JSON-decoded) snapshot must render through the same
	// text dump as a live one — the fsmon -status path.
	var sb strings.Builder
	if err := WriteSnapshotText(&sb, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fsmon.test.events 9\n") {
		t.Errorf("text dump missing counter line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "fsmon.test.e2e_us count=100") {
		t.Errorf("text dump missing histogram line:\n%s", sb.String())
	}
}

// TestServeDebugSurfaces checks the expvar mirror and that pprof is wired.
func TestServeDebugSurfaces(t *testing.T) {
	r := NewRegistry()
	r.Gauge("fsmon.test.depth").Set(4)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	fsmon, ok := vars["fsmon"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing fsmon: %v", vars["fsmon"])
	}
	if fsmon["fsmon.test.depth"] != float64(4) {
		t.Errorf("expvar depth = %v, want 4", fsmon["fsmon.test.depth"])
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %s", pp.Status)
	}
}

// TestServeNilRegistry: the endpoint must work (empty snapshots) when no
// registry is attached, since pprof alone is worth serving.
func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap, err := FetchSnapshot("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Errorf("nil-registry snapshot = %v, want empty", snap)
	}
}
