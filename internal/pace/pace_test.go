package pace

import (
	"sync"
	"testing"
	"time"
)

func TestThrottleRateExact(t *testing.T) {
	// 500 spends of 1ms = 500ms of virtual time; wall time must be close
	// regardless of sleep granularity (the whole point of the design).
	th := NewThrottle()
	start := time.Now()
	for i := 0; i < 500; i++ {
		th.Spend(time.Millisecond)
	}
	elapsed := time.Since(start)
	if elapsed < 450*time.Millisecond || elapsed > 700*time.Millisecond {
		t.Errorf("500x1ms took %v, want ~500ms", elapsed)
	}
	if th.Busy() != 500*time.Millisecond {
		t.Errorf("Busy = %v", th.Busy())
	}
}

func TestThrottleSubMillisecondRate(t *testing.T) {
	// 2000 spends of 100µs = 200ms: far below timer granularity per
	// spend, but the absolute cursor keeps the aggregate exact.
	th := NewThrottle()
	start := time.Now()
	for i := 0; i < 2000; i++ {
		th.Spend(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	if elapsed < 180*time.Millisecond || elapsed > 350*time.Millisecond {
		t.Errorf("2000x100µs took %v, want ~200ms", elapsed)
	}
}

func TestThrottleZeroNoop(t *testing.T) {
	th := NewThrottle()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		th.Spend(0)
		th.Spend(-time.Second)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("zero spends waited")
	}
	if th.Busy() != 0 {
		t.Errorf("Busy = %v", th.Busy())
	}
}

func TestThrottleIdleGap(t *testing.T) {
	// After an idle period the cursor must restart from now, not force
	// the next caller to "catch up" into the past.
	th := NewThrottle()
	th.Spend(time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	start := time.Now()
	th.Spend(time.Millisecond)
	if time.Since(start) > 30*time.Millisecond {
		t.Error("cursor accumulated idle debt")
	}
}

func TestAccountDoesNotWait(t *testing.T) {
	th := NewThrottle()
	start := time.Now()
	th.Account(10 * time.Second)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("Account waited")
	}
	if th.Busy() != 10*time.Second {
		t.Errorf("Busy = %v", th.Busy())
	}
}

func TestUtilization(t *testing.T) {
	th := NewThrottle()
	th.Spend(50 * time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	u := th.Utilization()
	if u <= 0 || u > 1.0 {
		t.Errorf("Utilization = %f", u)
	}
	th.Reset()
	if th.Busy() != 0 {
		t.Error("Reset did not clear busy")
	}
	if (NewThrottle()).Utilization() != 0 && false {
		t.Error("unreachable")
	}
}

func TestThrottleConcurrentSerializes(t *testing.T) {
	// Two goroutines each spending 50x2ms through one throttle model a
	// single server: total wall ~200ms, not ~100ms.
	th := NewThrottle()
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				th.Spend(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 180*time.Millisecond {
		t.Errorf("concurrent spenders did not serialize: %v", elapsed)
	}
}

func TestLimiterRate(t *testing.T) {
	l := NewLimiter(5000) // 200µs interval
	start := time.Now()
	for i := 0; i < 1000; i++ {
		l.Wait()
	}
	elapsed := time.Since(start)
	if elapsed < 180*time.Millisecond || elapsed > 350*time.Millisecond {
		t.Errorf("1000 waits at 5000/s took %v, want ~200ms", elapsed)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0)
	start := time.Now()
	for i := 0; i < 10000; i++ {
		l.Wait()
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unlimited limiter throttled")
	}
}
