// Package pace provides service-time pacing for simulated components.
//
// The paper's quantitative results are throughput rates determined by
// per-operation service times: metadata operation latencies set the event
// generation rates of Table V, and the fid2path cost sets the collector's
// processing rate (Tables VI–VIII). Reproducing those rates in real time
// with time.Sleep per operation fails on machines with coarse timer
// granularity (sub-millisecond sleeps round up to ~1ms), so Throttle paces
// against an absolute virtual deadline instead: each Spend(d) advances a
// cursor by exactly d and sleeps only as far as the cursor. Individual
// waits may be bursty at timer granularity, but the average rate is exact —
// a component that spends 115µs per item processes 8 695 items/s regardless
// of sleep resolution, and sleeping consumes no CPU, so many simulated
// components coexist on few cores.
package pace

import (
	"sync"
	"time"
)

// Throttle models one sequential server with a given service time per
// item. It is safe for concurrent use, serializing spenders as a single
// server would.
type Throttle struct {
	mu     sync.Mutex
	cursor time.Time
	spent  time.Duration
	start  time.Time
}

// NewThrottle returns a throttle whose virtual cursor starts now.
func NewThrottle() *Throttle {
	now := time.Now()
	return &Throttle{cursor: now, start: now}
}

// maxBurst bounds how far the cursor may lag behind real time: after an
// idle period a spender may proceed without waiting for at most this much
// accumulated service time. It also absorbs coarse sleep overshoot — when
// one sleep overshoots by a millisecond, the following spends run
// immediately until the cursor catches up, keeping the average rate exact.
const maxBurst = 10 * time.Millisecond

// Spend accounts d of service time and blocks until the virtual cursor is
// reached. A zero or negative d is a no-op.
func (t *Throttle) Spend(d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	now := time.Now()
	if floor := now.Add(-maxBurst); t.cursor.Before(floor) {
		// Idle credit is capped at maxBurst.
		t.cursor = floor
	}
	t.cursor = t.cursor.Add(d)
	t.spent += d
	deadline := t.cursor
	t.mu.Unlock()
	if wait := time.Until(deadline); wait > 0 {
		time.Sleep(wait)
	}
}

// Account records d of busy time without waiting (for costs that should
// appear in utilization accounting but not delay the pipeline).
func (t *Throttle) Account(d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	t.spent += d
	t.mu.Unlock()
}

// Busy returns the total service time spent.
func (t *Throttle) Busy() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Utilization returns busy time divided by elapsed wall time since the
// throttle was created (or last reset), as a fraction in [0, ~1].
func (t *Throttle) Utilization() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start)
	if elapsed <= 0 {
		return 0
	}
	u := float64(t.spent) / float64(elapsed)
	return u
}

// Reset zeroes the accounting and restarts the utilization window.
func (t *Throttle) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.cursor = now
	t.start = now
	t.spent = 0
}

// Limiter paces a loop to a fixed rate using the same absolute-deadline
// technique: Wait returns when the next slot is due.
type Limiter struct {
	t        *Throttle
	interval time.Duration
}

// NewLimiter returns a limiter allowing ratePerSec events per second.
// A non-positive rate yields an unlimited limiter.
func NewLimiter(ratePerSec float64) *Limiter {
	l := &Limiter{t: NewThrottle()}
	if ratePerSec > 0 {
		l.interval = time.Duration(float64(time.Second) / ratePerSec)
	}
	return l
}

// Wait blocks until the next slot.
func (l *Limiter) Wait() { l.t.Spend(l.interval) }
