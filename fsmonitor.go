// Package fsmonitor is a generic, scalable file-system monitor with a
// standardized event representation, reproducing the system described in
//
//	Paul, Chard, Chard, Tuecke, Butt, Foster.
//	"FSMonitor: Scalable File System Monitoring for Arbitrary Storage
//	Systems." IEEE CLUSTER 2019.
//
// FSMonitor detects and reports file-system events — creations,
// modifications, renames, deletions, attribute changes — across very
// different storage systems behind one API and one event vocabulary
// (inotify's, the de-facto standard). Its three-layer architecture
// consists of a modular Data Storage Interface (DSI) that captures events
// from the underlying storage, a resolution layer that standardizes,
// batches, and caches, and an interface layer that stores events reliably
// and reports them to subscribers.
//
// Backends include real Linux inotify (via raw syscalls), a portable
// polling watcher, high-fidelity simulations of kqueue, FSEvents, and
// Windows FileSystemWatcher over an in-memory filesystem, and the paper's
// scalable monitor for (simulated) Lustre: per-MDS Changelog collectors
// with LRU-cached fid2path resolution, a message-queue aggregator, and
// fault-tolerant consumers.
//
// Quick start — watch a real directory:
//
//	m, err := fsmonitor.Watch("/data", fsmonitor.WithRecursive())
//	if err != nil { ... }
//	defer m.Close()
//	sub, _ := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
//	for batch := range sub.C() {
//		for _, e := range batch {
//			fmt.Println(e) // "/data CREATE /hello.txt"
//		}
//	}
package fsmonitor

import (
	"context"
	"io"
	"log/slog"
	"runtime"
	"time"

	"fsmonitor/internal/core"
	"fsmonitor/internal/dsi"
	"fsmonitor/internal/dsi/lustredsi"
	"fsmonitor/internal/dsi/mount"
	"fsmonitor/internal/dsi/objectdsi"
	"fsmonitor/internal/events"
	"fsmonitor/internal/eventstore"
	"fsmonitor/internal/iface"
	"fsmonitor/internal/lustre"
	"fsmonitor/internal/resolution"
	"fsmonitor/internal/spectrum"
	"fsmonitor/internal/telemetry"
	"fsmonitor/internal/vfs"
)

// Event is the standardized file-system event (inotify-style).
type Event = events.Event

// Op is the standardized operation mask.
type Op = events.Op

// Standardized operations (see events.Op).
const (
	OpAccess     = events.OpAccess
	OpModify     = events.OpModify
	OpAttrib     = events.OpAttrib
	OpCloseWrite = events.OpCloseWrite
	OpCloseNoWr  = events.OpCloseNoWr
	OpClose      = events.OpClose
	OpOpen       = events.OpOpen
	OpMovedFrom  = events.OpMovedFrom
	OpMovedTo    = events.OpMovedTo
	OpCreate     = events.OpCreate
	OpDelete     = events.OpDelete
	OpDeleteSelf = events.OpDeleteSelf
	OpMoveSelf   = events.OpMoveSelf
	OpXattr      = events.OpXattr
	OpTruncate   = events.OpTruncate
	OpOverflow   = events.OpOverflow
	OpIsDir      = events.OpIsDir
)

// Format identifies an output event representation.
type Format = events.Format

// Supported representations (§III-A2: events can be transformed into any
// common format by populating its template).
const (
	FormatStandard = events.FormatStandard
	FormatInotify  = events.FormatInotify
	FormatKqueue   = events.FormatKqueue
	FormatFSEvents = events.FormatFSEvents
	FormatFSW      = events.FormatFSW
	FormatLustre   = events.FormatLustre
)

// Transform renders an event in the requested representation.
func Transform(e Event, f Format) (string, error) { return events.Transform(e, f) }

// Filter selects events for a subscription.
type Filter = iface.Filter

// Subscription is a client event feed.
type Subscription = iface.Subscription

// Monitor is a running FSMonitor instance.
type Monitor = core.Monitor

// Stats aggregates monitor-layer statistics.
type Stats = core.Stats

// SimFS is the in-memory filesystem used by the simulated platform
// backends (and as a hermetic test target).
type SimFS = vfs.FS

// NewSimFS creates an empty simulated filesystem.
func NewSimFS() *SimFS { return vfs.New() }

// LustreCluster is a simulated Lustre deployment.
type LustreCluster = lustre.Cluster

// LustreConfig describes a simulated Lustre deployment.
type LustreConfig = lustre.Config

// NewLustreCluster builds a simulated Lustre file system. The presets
// lustre.AWSConfig, lustre.ThorConfig, and lustre.IotaConfig reproduce the
// paper's three testbeds.
func NewLustreCluster(cfg LustreConfig) *LustreCluster { return lustre.NewCluster(cfg) }

// Option customizes New/Watch.
type Option func(*core.Options)

// WithRecursive monitors the whole subtree. FSMonitor's default matches
// inotify's non-recursive semantics; recursion is a filtering-rule change,
// not a new watcher (§V-C1).
func WithRecursive() Option {
	return func(o *core.Options) { o.Recursive = true }
}

// WithContext bounds the monitor's lifetime: the context is threaded
// through every layer (DSI capture, resolution pipeline, interface), and
// canceling it shuts the monitor down — sources stop first, in-flight
// events drain downstream in stage order, then blocked operations unwind.
// Close remains the explicit, graceful path.
func WithContext(ctx context.Context) Option {
	return func(o *core.Options) { o.Context = ctx }
}

// WithDSI pins a specific backend by name instead of auto-selection.
func WithDSI(name string) Option {
	return func(o *core.Options) { o.DSIName = name }
}

// WithPlatform overrides the platform used for DSI selection (e.g.
// "sim-darwin" to monitor a SimFS through the FSEvents simulation).
func WithPlatform(platform string) Option {
	return func(o *core.Options) { o.Storage.Platform = platform }
}

// WithBackend passes the storage handle (a *SimFS for simulated
// platforms; a *LustreCluster for Lustre).
func WithBackend(backend any) Option {
	return func(o *core.Options) { o.Backend = backend }
}

// WithStoreBound caps the reliable event store at n events ("the size of
// this database is configurable", §III-A3).
func WithStoreBound(n int) Option {
	return func(o *core.Options) { o.Store.MaxEvents = n }
}

// WithJournal persists the event store to a JSONL journal at path.
func WithJournal(path string) Option {
	return func(o *core.Options) { o.Store.JournalPath = path }
}

// SyncPolicy selects when journaled events are flushed to the OS; see
// eventstore.SyncPolicy for the durability tradeoff.
type SyncPolicy = eventstore.SyncPolicy

// Journal flush policies.
const (
	// SyncOnClose buffers until Sync/Close — fastest, and events still
	// buffered are lost if the process dies (the default).
	SyncOnClose = eventstore.SyncOnClose
	// SyncAlways flushes after every append — any stored event survives
	// a process crash.
	SyncAlways = eventstore.SyncAlways
	// SyncEveryN flushes every N appends — bounded loss window.
	SyncEveryN = eventstore.SyncEveryN
)

// WithJournalSync selects the journal flush policy (see SyncPolicy).
func WithJournalSync(p SyncPolicy) Option {
	return func(o *core.Options) { o.Store.Sync = p }
}

// WithJournalSyncEvery selects the SyncEveryN policy with a flush every n
// appended events.
func WithJournalSyncEvery(n int) Option {
	return func(o *core.Options) {
		o.Store.Sync = eventstore.SyncEveryN
		o.Store.SyncEvery = n
	}
}

// WithStorePartitions shards the scalable monitor's aggregation tier into
// n partitions keyed by MDT index: the reliable store, the aggregator's
// store lanes, and the republish topics all split, preserving per-partition
// event order. The default 1 reproduces the paper's single serial store
// (Tables IV/VII). Lustre path only.
func WithStorePartitions(n int) Option {
	return func(o *core.Options) { o.StorePartitions = n }
}

// WithClusterNodes deploys the aggregation tier as a cluster of n routed
// aggregator nodes instead of the single aggregator: collectors route each
// batch slice to the partition owner's inbox, every node stores and
// republishes the partitions it owns (rendezvous-hashed, rebalanced on
// membership change with journal-replay handoff), and consumers recover
// through a coverage-checked fan-out across all nodes. n <= 1 with no join
// list keeps the single-node wire format byte-identical to the classic
// aggregator. Lustre path only.
func WithClusterNodes(n int) Option {
	return func(o *core.Options) { o.ClusterNodes = n }
}

// WithClusterJoin points the deployed aggregator node(s) at an existing
// cluster's ctl inboxes (e.g. "tcp://host:7401"): they join that cluster
// and take over their rendezvous share of its partitions. Lustre path
// only.
func WithClusterJoin(ctl ...string) Option {
	return func(o *core.Options) { o.ClusterJoin = append([]string(nil), ctl...) }
}

// WithClusterListen binds the first deployed node's event publisher to a
// fixed endpoint (e.g. "tcp://0.0.0.0:7400") so consumers and nodes on
// other machines can reach it; the default is a loopback or in-process
// endpoint. Lustre path only.
func WithClusterListen(endpoint string) Option {
	return func(o *core.Options) { o.ClusterListen = endpoint }
}

// WithClusterNodePrefix prefixes the deployed nodes' cluster member IDs
// ("<prefix>0".."<prefix>N-1"). Every member of a cluster needs a unique
// ID; without this option a founding process uses the stable "n" prefix
// and a joining process derives a host+pid prefix, so two processes
// never collide. The prefix must not contain '.'. Lustre path only.
func WithClusterNodePrefix(prefix string) Option {
	return func(o *core.Options) { o.ClusterNodePrefix = prefix }
}

// WithClusterAdvertise sets the externally reachable host substituted
// into every advertised cluster address (publishers, join inboxes,
// recovery servers). Required when WithClusterListen binds a wildcard
// host ("0.0.0.0") that machines elsewhere cannot dial back. Lustre
// path only.
func WithClusterAdvertise(host string) Option {
	return func(o *core.Options) { o.ClusterAdvertise = host }
}

// ClusterMember identifies one member of a clustered aggregation tier:
// its ID and the addresses peers join (Ctl) and consumers dial
// (Endpoint, Recovery). Monitor.ClusterMembers returns them.
type ClusterMember = dsi.ClusterMember

// WithBatch tunes resolution-layer batching (§III-A2's batching
// optimization).
func WithBatch(size int) Option {
	return func(o *core.Options) { o.Resolution.BatchSize = size }
}

// Telemetry is the unified metrics registry: every layer of a monitor
// built with WithTelemetry mirrors its counters, gauges, and latency
// histograms into one namespace (fsmon.core.*, fsmon.collector.mdt<N>.*,
// fsmon.aggregator.*, fsmon.store.p<i>.*, fsmon.consumer.*,
// fsmon.process.*). Snapshot/WriteText read it on demand; ServeTelemetry
// exposes it over HTTP.
type Telemetry = telemetry.Registry

// HistogramSnapshot is a latency histogram's point-in-time quantile view
// (count, mean, p50/p95/p99, max) as found in Telemetry.Snapshot().
type HistogramSnapshot = telemetry.HistogramSnapshot

// NewTelemetry creates an empty registry to pass to WithTelemetry. One
// registry can serve several monitors — names are deployment-scoped.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// WithTelemetry mirrors every layer of the monitor into reg and enables
// end-to-end event latency tracing (capture → resolve → publish → store →
// republish → deliver on the Lustre path). The default nil registry costs
// nothing on the event path.
func WithTelemetry(reg *Telemetry) Option {
	return func(o *core.Options) { o.Telemetry = reg }
}

// WithLogger routes the monitor's structured logs (component-tagged
// log/slog records: dropped batches, store failures, lifecycle) to l.
// Nil — the default — discards them.
func WithLogger(l *slog.Logger) Option {
	return func(o *core.Options) { o.Logger = l }
}

// WithIncidentDir arms the incident flight recorder (requires
// WithTelemetry): when the telemetry watchdog sees a tier degrade or
// stall — or TriggerIncident is called — the monitor captures a
// self-contained diagnostic bundle under dir (registry snapshot, sampler
// history, completed traces at a boosted sampling rate, audit counters,
// health verdicts, cluster view, recent logs, goroutine and heap
// profiles). Bundles are JSON files named after their incident ID; the
// directory keeps the most recent ones (see WithIncidentRetention).
func WithIncidentDir(dir string) Option {
	return func(o *core.Options) { o.IncidentDir = dir }
}

// WithIncidentRetention bounds how many incident bundles the directory
// armed by WithIncidentDir keeps; the oldest are pruned first. n <= 0
// keeps the default (8).
func WithIncidentRetention(n int) Option {
	return func(o *core.Options) { o.IncidentRetain = n }
}

// TelemetryServer is a live introspection endpoint started by
// ServeTelemetry.
type TelemetryServer = telemetry.Server

// ServeTelemetry exposes reg at addr: /metrics (JSON snapshot),
// /debug/vars (expvar), and /debug/pprof/* (runtime profiles). Close the
// returned server to stop. addr may use port 0; Addr() reports the bound
// address.
func ServeTelemetry(addr string, reg *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg)
}

// FetchTelemetry retrieves a /metrics JSON snapshot from a running
// ServeTelemetry endpoint (url is e.g. "http://127.0.0.1:9090/metrics").
// WriteTelemetryText renders such a snapshot for humans.
func FetchTelemetry(url string) (map[string]any, error) {
	return telemetry.FetchSnapshot(url)
}

// WriteTelemetryText renders a snapshot — live from Telemetry.Snapshot()
// or fetched with FetchTelemetry — as sorted name-per-line text (the
// `fsmon -status` format).
func WriteTelemetryText(w io.Writer, snap map[string]any) error {
	return telemetry.WriteSnapshotText(w, snap)
}

// TelemetrySampler is the background time-series sampler: it snapshots
// the registry on a fixed interval into a bounded ring, from which
// per-second rates and windowed min/max/delta views derive (served at
// /metrics/history).
type TelemetrySampler = telemetry.Sampler

// TelemetryHealth is the watchdog health model: threshold rules over the
// sampler's retained series producing per-tier ok/degraded/stalled
// verdicts (served at /healthz, 503 when stalled).
type TelemetryHealth = telemetry.Health

// HealthReport is one watchdog evaluation: the worst tier status plus
// every tier's verdict and reasons.
type HealthReport = telemetry.HealthReport

// Trace is a completed per-event span chain: one (tier, timestamp) span
// for every hop from changelog read to application delivery.
type Trace = telemetry.Trace

// StartTelemetrySampler attaches the background time-series sampler to
// reg and starts it (interval <= 0 selects the one-second default). The
// registry holds at most one sampler; repeated calls return it. With a
// sampler attached, a ServeTelemetry endpoint's /metrics/history serves
// the retained window and derived rates.
func StartTelemetrySampler(reg *Telemetry, interval time.Duration) *TelemetrySampler {
	return reg.StartSampler(interval, 0)
}

// StartTelemetryWatchdog arms the full self-monitoring loop on reg: it
// starts the sampler (if not already running), builds the built-in health
// rule set (pipeline stage stall, queue saturation, cursor-lag and
// changelog-backlog growth, resolution error spikes), attaches it so
// /healthz serves verdicts, and starts the background watchdog that logs
// tier transitions to logger. Close the returned model to stop the
// watchdog.
func StartTelemetryWatchdog(reg *Telemetry, logger *slog.Logger) *TelemetryHealth {
	return StartTelemetryWatchdogWith(reg, TelemetryHealthOptions{Logger: logger})
}

// TelemetryHealthOptions tunes the watchdog built by
// StartTelemetryWatchdogWith: rule thresholds, the sampler retention
// backing the rules (SamplerHistory), and the OnTransition hook fired on
// every per-tier status change.
type TelemetryHealthOptions = telemetry.HealthOptions

// TelemetryTransition is one per-tier status change as passed to
// TelemetryHealthOptions.OnTransition and the flight recorder.
type TelemetryTransition = telemetry.Transition

// StartTelemetryWatchdogWith is StartTelemetryWatchdog with explicit
// options: it starts the sampler with opts.SamplerHistory retained
// samples (0 = default 256), builds the rule set from opts, attaches the
// model so /healthz serves verdicts, and starts the background watchdog.
// When the registry has a flight recorder armed (WithIncidentDir), every
// ok → degraded/stalled transition additionally triggers an incident
// capture. Close the returned model to stop the watchdog.
func StartTelemetryWatchdogWith(reg *Telemetry, opts TelemetryHealthOptions) *TelemetryHealth {
	s := reg.StartSampler(0, opts.SamplerHistory)
	if s == nil {
		return nil
	}
	h := telemetry.NewHealth(s, opts)
	reg.SetHealth(h)
	h.Start(0)
	return h
}

// EnableTraceSampling arms deterministic 1-in-n per-event span tracing on
// every monitor built over reg: sampled events' batches carry a span
// chain across collect → resolve → publish → partition → store →
// republish → deliver, and completed traces land in the registry's ring
// (served at /traces as Chrome trace_event JSON). n == 1 traces every
// event; n <= 0 disables. Call before the monitor is built — the trace
// ring must exist when collectors start. Collectors re-read the
// effective rate on every batch, so the flight recorder's adaptive
// boost (temporarily tightening 1-in-n during an incident window)
// applies live without a restart.
func EnableTraceSampling(reg *Telemetry, n int) {
	reg.EnableTracing(n, 0)
}

// Traces returns the completed span chains retained in reg's trace ring,
// oldest first (nil when tracing was never enabled).
func Traces(reg *Telemetry) []Trace {
	return reg.Traces().Snapshot()
}

// WriteChromeTrace renders completed traces as Chrome trace_event JSON —
// loadable in chrome://tracing or Perfetto. The /traces endpoint serves
// the same document.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	return telemetry.WriteChromeTrace(w, traces)
}

// FetchTelemetryHealth retrieves a /healthz verdict from a running
// ServeTelemetry endpoint. ok mirrors the HTTP verdict: true for 200,
// false for 503 (stalled); the report is valid either way.
func FetchTelemetryHealth(url string) (rep HealthReport, ok bool, err error) {
	return telemetry.FetchHealth(url)
}

// IncidentInfo summarizes one captured diagnostic bundle: incident ID,
// capture time, what tripped (trigger, tier, from/to status, reasons),
// and the bundle's file name under the incident directory.
type IncidentInfo = telemetry.IncidentInfo

// FetchIncidents lists the diagnostic bundles a running ServeTelemetry
// endpoint retains, newest first (url is e.g.
// "http://127.0.0.1:9090/debug/incidents"). Fetch one bundle's full JSON
// at <url>/<incident-id>.
func FetchIncidents(url string) ([]IncidentInfo, error) {
	return telemetry.FetchIncidents(url)
}

// TriggerRemoteIncident asks a running ServeTelemetry endpoint to
// capture a diagnostic bundle now (url is e.g.
// "http://127.0.0.1:9090/debug/incidents/trigger") and returns the
// captured bundle's JSON. The server must have a flight recorder armed
// (WithIncidentDir, or fsmon -incident-dir).
func TriggerRemoteIncident(url string) ([]byte, error) {
	return telemetry.TriggerRemoteIncident(url)
}

// ClusterHealthReport is the federated cluster rollup served at
// /cluster/healthz: the worst-of status across every member's watchdog
// verdict (a dead member counts as stalled) plus per-member state.
type ClusterHealthReport = telemetry.ClusterReport

// ClusterMemberHealth is one member's state inside a ClusterHealthReport:
// node ID, assignment epoch, owned partitions, heartbeat and snapshot
// ages, verdict, and the dead flag.
type ClusterMemberHealth = telemetry.ClusterMember

// TelemetryAudit is the delivery-conservation auditor: per-partition flow
// counters at every tier boundary (captured → published → stored →
// republished → delivered) and sequence gap/dup detectors, exported as
// fsmon.audit.* gauges and watched by the conservation-violation rule.
type TelemetryAudit = telemetry.Audit

// EnableConservationAudit attaches the delivery-conservation auditor to
// reg over parts store partitions. Monitors built over reg report their
// tier boundaries on it; in steady state the tiers balance to zero and
// any sequence gap or duplicate trips the conservation-violation watchdog
// rule. Must be called before the monitor is built (components read the
// handle at startup); clustered deployments attach it automatically.
func EnableConservationAudit(reg *Telemetry, parts int) *TelemetryAudit {
	return reg.EnableAudit(parts)
}

// FetchClusterHealth retrieves a /cluster/healthz rollup from a running
// ServeTelemetry endpoint over a clustered monitor. ok mirrors the HTTP
// verdict: true for 200, false for 503 (a member is stalled or dead); the
// report is valid either way. Non-clustered endpoints answer 404, which
// returns an error.
func FetchClusterHealth(url string) (rep ClusterHealthReport, ok bool, err error) {
	return telemetry.FetchClusterHealth(url)
}

// Watch monitors a real directory on the host filesystem, selecting the
// native backend for the current platform (inotify on Linux, polling
// elsewhere).
func Watch(path string, opts ...Option) (*Monitor, error) {
	o := core.Options{
		Storage: dsi.StorageInfo{Platform: runtime.GOOS, FSType: "local", Root: path},
	}
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// WatchSim monitors a simulated filesystem through the platform's
// simulated native API ("sim-linux", "sim-darwin", "sim-bsd",
// "sim-windows").
func WatchSim(fs *SimFS, platform, path string, opts ...Option) (*Monitor, error) {
	o := core.Options{
		Storage: dsi.StorageInfo{Platform: platform, FSType: "local", Root: path},
		Backend: fs,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// WatchLustre monitors a (simulated) Lustre cluster through the scalable
// monitor: one collector per MDS, LRU-cached fid2path resolution, and a
// message-queue aggregator. mount is the client mount path events are
// reported under. cacheSize 0 selects the paper's best value (5000);
// pass a negative cacheSize to disable the cache.
func WatchLustre(cluster *LustreCluster, mount string, cacheSize int, opts ...Option) (*Monitor, error) {
	size := cacheSize
	if size < 0 {
		size = 0
	} else if size == 0 {
		size = lustredsi.DefaultCacheSize
	}
	o := core.Options{
		Storage:   dsi.StorageInfo{Platform: runtime.GOOS, FSType: "lustre", Root: mount},
		Recursive: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	// Options are applied before the backend is built so knobs like
	// WithStorePartitions reach the deployment; WithBackend still wins.
	if o.Backend == nil {
		o.Backend = &lustredsi.Backend{
			Cluster:           cluster,
			CacheSize:         size,
			StorePartitions:   o.StorePartitions,
			ClusterNodes:      o.ClusterNodes,
			ClusterJoin:       o.ClusterJoin,
			ClusterListen:     o.ClusterListen,
			ClusterNodePrefix: o.ClusterNodePrefix,
			ClusterAdvertise:  o.ClusterAdvertise,
		}
	}
	return core.New(o)
}

// SpectrumCluster is a simulated IBM Spectrum Scale deployment with File
// Audit Logging.
type SpectrumCluster = spectrum.Cluster

// SpectrumConfig describes a simulated Spectrum Scale deployment.
type SpectrumConfig = spectrum.Config

// NewSpectrumCluster builds a simulated Spectrum Scale file system.
func NewSpectrumCluster(cfg SpectrumConfig) (*SpectrumCluster, error) {
	return spectrum.New(cfg)
}

// WatchSpectrum monitors a (simulated) Spectrum Scale cluster by tailing
// its File Audit Logging fileset — the extension path the paper sketches
// for a second distributed file system (§II-B2). mount is the client
// mount path events are reported under ("" = /gpfs/<fsname>).
func WatchSpectrum(cluster *SpectrumCluster, mount string, opts ...Option) (*Monitor, error) {
	o := core.Options{
		Storage:   dsi.StorageInfo{Platform: runtime.GOOS, FSType: "spectrum", Root: mount},
		Backend:   cluster,
		Recursive: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// StorageInfo describes a storage target for DSI selection (platform,
// filesystem type, root).
type StorageInfo = dsi.StorageInfo

// MountSpec describes one backend mounted at a prefix of a composed
// monitor's unified namespace.
type MountSpec = core.MountSpec

// MountStats is per-mount accounting (captured, shadowed, dropped, errors)
// found in Stats.Mounts.
type MountStats = mount.PointStats

// ErrNotComposed is returned by AttachMount/DetachMount on a monitor that
// was started single-backend.
var ErrNotComposed = mount.ErrNotComposed

// MountOption customizes one mount of a composed monitor.
type MountOption func(*core.MountSpec)

// MountBackend passes the storage handle to this mount's DSI factory (a
// *SimFS, *LustreCluster, *ObjectBucket, ...).
func MountBackend(backend any) MountOption {
	return func(s *core.MountSpec) { s.Backend = backend }
}

// MountDSI pins a specific backend by name for this mount instead of
// registry auto-selection.
func MountDSI(name string) MountOption {
	return func(s *core.MountSpec) { s.DSIName = name }
}

// MountRecursive monitors the whole subtree under this mount's root.
func MountRecursive() MountOption {
	return func(s *core.MountSpec) { s.Recursive = true }
}

// MountBuffer sets this mount's DSI channel capacity (0 = default).
func MountBuffer(n int) MountOption {
	return func(s *core.MountSpec) { s.Buffer = n }
}

// WithMount grafts a backend into the monitor's namespace at prefix: the
// registry selects a DSI for storage (unless MountDSI pins one), and its
// events are reported with paths rewritten under prefix. Repeat the option
// to compose several backends; deeper prefixes shadow shallower ones.
// Passing at least one WithMount switches the monitor's capture layer to a
// mount table — with none, the classic single-backend path is untouched.
func WithMount(prefix string, storage StorageInfo, opts ...MountOption) Option {
	spec := core.MountSpec{Prefix: prefix, Storage: storage}
	for _, opt := range opts {
		opt(&spec)
	}
	return func(o *core.Options) { o.Mounts = append(o.Mounts, spec) }
}

// Compose builds a monitor over several mounted backends with no primary
// storage: every WithMount contributes one mount, and subscribers see one
// unified event stream with per-mount path prefixes.
//
//	m, err := fsmonitor.Compose(
//		fsmonitor.WithMount("/lustre", fsmonitor.StorageInfo{FSType: "lustre"},
//			fsmonitor.MountBackend(cluster)),
//		fsmonitor.WithMount("/obj", fsmonitor.StorageInfo{FSType: "object"},
//			fsmonitor.MountBackend(bucket)),
//	)
func Compose(opts ...Option) (*Monitor, error) {
	o := core.Options{Storage: dsi.StorageInfo{Root: "/"}}
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// ObjectBucket is a simulated flat-keyspace object store (PUT/DELETE/LIST
// with best-effort change notifications) — the third storage paradigm next
// to local filesystems and parallel filesystems.
type ObjectBucket = objectdsi.Bucket

// ObjectInfo describes one stored object.
type ObjectInfo = objectdsi.Object

// NewObjectBucket creates an empty simulated object store to mount with
// MountBackend (FSType "object").
func NewObjectBucket() *ObjectBucket { return objectdsi.NewBucket() }

// BackendScore is one registry candidate's suitability for a storage
// target, as reported by Registry().Scores.
type BackendScore = dsi.BackendScore

// Registry returns the default DSI registry (every built-in backend);
// custom backends register against it before building monitors.
func Registry() *dsi.Registry { return core.DefaultRegistry() }

// StoreOptions configures a standalone reliable event store.
type StoreOptions = eventstore.Options

// ResolutionOptions tunes the resolution layer.
type ResolutionOptions = resolution.Options
