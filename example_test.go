package fsmonitor_test

import (
	"fmt"
	"time"

	"fsmonitor"
)

// ExampleTransform shows rendering one standardized event in the native
// vocabularies of the common monitoring tools (§III-A2: transformation by
// populating each format's template).
func ExampleTransform() {
	e := fsmonitor.Event{Root: "/data", Op: fsmonitor.OpCreate, Path: "/hello.txt"}
	for _, f := range []fsmonitor.Format{
		fsmonitor.FormatStandard,
		fsmonitor.FormatInotify,
		fsmonitor.FormatKqueue,
		fsmonitor.FormatFSW,
	} {
		line, _ := fsmonitor.Transform(e, f)
		fmt.Println(line)
	}
	// Output:
	// /data CREATE /hello.txt
	// /data IN_CREATE /hello.txt
	// /data NOTE_EXTEND /hello.txt
	// Created: /data/hello.txt
}

// ExampleWatchSim monitors a simulated filesystem through the macOS
// FSEvents simulation and prints the standardized events — identical to
// what the Linux inotify backend would report (Table II).
func ExampleWatchSim() {
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/data"); err != nil {
		panic(err)
	}
	m, err := fsmonitor.WatchSim(fs, "sim-darwin", "/data")
	if err != nil {
		panic(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Ops: fsmonitor.OpCreate | fsmonitor.OpDelete}, 0)
	if err != nil {
		panic(err)
	}
	if err := fs.WriteFile("/data/hello.txt", 5); err != nil {
		panic(err)
	}
	if err := fs.Remove("/data/hello.txt"); err != nil {
		panic(err)
	}
	printed := 0
	deadline := time.After(2 * time.Second)
	for printed < 2 {
		select {
		case batch := <-sub.C():
			for _, e := range batch {
				fmt.Println(e)
				printed++
			}
		case <-deadline:
			return
		}
	}
	// Output:
	// /data CREATE /hello.txt
	// /data DELETE /hello.txt
}

// ExampleWatchLustre deploys the scalable monitor on a simulated four-MDS
// Lustre cluster and reports events with fully resolved paths.
func ExampleWatchLustre() {
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 4})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0)
	if err != nil {
		panic(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		panic(err)
	}
	cl := cluster.Client()
	if err := cl.Create("/hello.txt"); err != nil {
		panic(err)
	}
	// Give the collector a beat: fid2path resolves a FID to its *current*
	// path, so a create processed after the rename would already report
	// the new name.
	time.Sleep(100 * time.Millisecond)
	if err := cl.Rename("/hello.txt", "/hi.txt"); err != nil {
		panic(err)
	}
	printed := 0
	deadline := time.After(2 * time.Second)
	for printed < 3 {
		select {
		case batch := <-sub.C():
			for _, e := range batch {
				fmt.Println(e)
				printed++
			}
		case <-deadline:
			return
		}
	}
	// Output:
	// /mnt/lustre CREATE /hello.txt
	// /mnt/lustre MOVED_FROM /hello.txt
	// /mnt/lustre MOVED_TO /hi.txt
}
