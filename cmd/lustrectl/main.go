// Command lustrectl drives the simulated Lustre cluster: it builds a
// testbed, runs workloads against it, and dumps Changelogs — the
// operator's view of the substrate the scalable monitor consumes.
//
//	lustrectl -testbed thor -workload output -dump
//	lustrectl -testbed iota -workload perf -duration 2s
//	lustrectl -testbed thor -workload apps -filebench-files 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fsmonitor/internal/lustre"
	"fsmonitor/internal/workload"
)

func main() {
	testbed := flag.String("testbed", "thor", "cluster preset: aws, thor, iota")
	wl := flag.String("workload", "output", "workload: output, perf, ior, hacc, filebench, apps")
	duration := flag.Duration("duration", 2*time.Second, "perf workload duration")
	paced := flag.Bool("paced", false, "apply the testbed's calibrated operation latencies")
	dump := flag.Bool("dump", false, "dump Changelog records after the workload")
	maxDump := flag.Int("max-dump", 40, "maximum records to dump per MDT")
	fbFiles := flag.Int("filebench-files", 2000, "filebench file count")
	flag.Parse()

	var cfg lustre.Config
	switch strings.ToLower(*testbed) {
	case "aws":
		cfg = lustre.AWSConfig()
	case "thor":
		cfg = lustre.ThorConfig()
	case "iota":
		cfg = lustre.IotaConfig()
	default:
		fatal(fmt.Errorf("unknown testbed %q", *testbed))
	}
	if !*paced {
		cfg.OpLatency = nil
	}
	cluster := lustre.NewCluster(cfg)
	fmt.Printf("cluster %s: %d MDS, %d OSS x %d OST (%d GB each), %.1f TB total\n",
		cfg.Name, cluster.NumMDS(), cfg.NumOSS, cfg.OSTsPerOSS, cfg.OSTSizeGB,
		float64(cluster.TotalCapacity())/(1<<40))

	var client *lustre.Client
	if *paced {
		client = cluster.PacedClient()
	} else {
		client = cluster.Client()
	}
	target := workload.NewLustreTarget(client)
	start := time.Now()
	switch *wl {
	case "output":
		if err := client.MkdirAll("/test"); err != nil {
			fatal(err)
		}
		if err := workload.OutputScript(target, "/test", 0); err != nil {
			fatal(err)
		}
	case "perf":
		rep, err := workload.RunPerformanceScript(context.Background(),
			[]workload.Target{target}, workload.PerfOptions{Dir: "/perf", Duration: *duration})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("perf: %d creates, %d modifies, %d deletes in %v (%.0f events/s)\n",
			rep.Creates, rep.Modifies, rep.Deletes, rep.Elapsed.Round(time.Millisecond), rep.EventsPerSec())
	case "ior":
		if err := workload.RunIOR(target, workload.IOROptions{}); err != nil {
			fatal(err)
		}
	case "hacc":
		if err := workload.RunHACC(target, workload.HACCOptions{}); err != nil {
			fatal(err)
		}
	case "filebench":
		rep, err := workload.RunFilebench(target, workload.FilebenchOptions{Files: *fbFiles})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("filebench: %d files in %d directories, %.1f MB\n",
			rep.Files, rep.Directories, float64(rep.TotalBytes)/(1<<20))
	case "apps":
		if err := workload.RunIOR(target, workload.IOROptions{}); err != nil {
			fatal(err)
		}
		if err := workload.RunHACC(workload.NewLustreTarget(cluster.Client()), workload.HACCOptions{}); err != nil {
			fatal(err)
		}
		if _, err := workload.RunFilebench(workload.NewLustreTarget(cluster.Client()), workload.FilebenchOptions{Files: *fbFiles}); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	fmt.Printf("workload %s completed in %v\n", *wl, time.Since(start).Round(time.Millisecond))

	files, dirs := cluster.Counts()
	fmt.Printf("namespace: %d files, %d directories; OST usage %.1f MB; fid2path calls %d\n",
		files, dirs, float64(cluster.TotalUsed())/(1<<20), cluster.Fid2PathCalls())
	for i := 0; i < cluster.NumMDS(); i++ {
		log, _ := cluster.Changelog(i)
		st := log.Stats()
		fmt.Printf("MDT%d changelog: %d records appended, %d retained\n", i, st.Appended, st.Retained)
		if *dump {
			recs := log.Read(0, *maxDump)
			for _, r := range recs {
				fmt.Printf("  %s\n", r)
			}
			if st.Retained > len(recs) {
				fmt.Printf("  ... %d more\n", st.Retained-len(recs))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lustrectl: %v\n", err)
	os.Exit(1)
}
