// Command fsmon-bench regenerates the paper's evaluation tables
// (Tables II–IX and the §V-D5 Robinhood comparison) on the simulated
// testbeds.
//
// Usage:
//
//	fsmon-bench [-table all|2|3|4|5|6|7|8|9|robinhood] [-duration 4s] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fsmonitor/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: all, 2..9, or robinhood")
	duration := flag.Duration("duration", 0, "measurement window per cell (default 4s, quick 1.5s)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	files := flag.Int("filebench-files", 0, "Filebench file count for Table 9 (default 50000, quick 5000)")
	flag.Parse()

	opts := bench.Options{Duration: *duration, Quick: *quick, FilebenchFiles: *files}
	start := time.Now()
	var (
		tables []bench.Table
		err    error
	)
	if *table == "all" {
		tables, err = bench.All(opts)
	} else {
		var t bench.Table
		t, err = bench.Run(*table, opts)
		tables = append(tables, t)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsmon-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}
