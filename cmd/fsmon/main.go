// Command fsmon is FSMonitor's command-line monitor — the inotifywait
// analogue with FSMonitor's standardized output, working against any DSI.
//
// Watch a real directory (inotify on Linux, polling elsewhere):
//
//	fsmon /data
//	fsmon -recursive -ops CREATE,DELETE /data
//	fsmon -format fsevents /data
//
// Watch a simulated Lustre cluster driven by a built-in demo workload:
//
//	fsmon -lustre iota -demo
//
// Compose several backends into one namespace with repeatable -mount
// flags, or inspect the DSI registry:
//
//	fsmon -mount /logs=local:/var/log -mount /obj=object:/
//	fsmon -list-backends
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fsmonitor"
	"fsmonitor/internal/events"
	"fsmonitor/internal/lustre"
	"fsmonitor/internal/workload"
)

// mountList collects repeatable -mount flags ("/prefix=backend:root").
type mountList []string

func (m *mountList) String() string { return strings.Join(*m, ",") }

func (m *mountList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want /prefix=backend:root, got %q", v)
	}
	*m = append(*m, v)
	return nil
}

// parseMount turns "/prefix=backend:root" into a WithMount option. backend
// is an fstype shorthand (local, object) or a registered DSI name; root is
// the backend-local path (default "/"). An object mount gets a fresh
// in-memory bucket.
func parseMount(spec string, recursive bool) (fsmonitor.Option, error) {
	prefix, rest, _ := strings.Cut(spec, "=")
	backend, root, ok := strings.Cut(rest, ":")
	if !ok {
		root = "/"
	}
	if prefix == "" || backend == "" {
		return nil, fmt.Errorf("want /prefix=backend:root, got %q", spec)
	}
	var mopts []fsmonitor.MountOption
	if recursive {
		mopts = append(mopts, fsmonitor.MountRecursive())
	}
	info := fsmonitor.StorageInfo{Platform: runtime.GOOS, FSType: "local", Root: root}
	switch backend {
	case "local":
		// Registry auto-selects the native watcher for this host.
	case "object":
		info = fsmonitor.StorageInfo{FSType: "object", Root: root}
		mopts = append(mopts, fsmonitor.MountBackend(fsmonitor.NewObjectBucket()))
	default:
		mopts = append(mopts, fsmonitor.MountDSI(backend))
	}
	return fsmonitor.WithMount(prefix, info, mopts...), nil
}

func main() {
	recursive := flag.Bool("recursive", false, "monitor the whole subtree (FSMonitor's filtering-rule recursion)")
	ops := flag.String("ops", "", "comma-separated event mask, e.g. CREATE,MODIFY,DELETE (default: all)")
	format := flag.String("format", "standard", "output representation: standard, inotify, kqueue, fsevents, fsw, lustre")
	backend := flag.String("dsi", "", "force a DSI backend by name (default: auto-select)")
	lustreBed := flag.String("lustre", "", "monitor a simulated Lustre testbed instead of a path: aws, thor, or iota")
	cache := flag.Int("cache", 0, "Lustre fid2path cache size (0 = paper default 5000, negative = disabled)")
	partitions := flag.Int("partitions", 0, "with -lustre: aggregation-tier store partitions (0 = 1, the paper's single store)")
	clusterNodes := flag.Int("cluster-nodes", 0, "with -lustre: deploy the aggregation tier as this many routed aggregator nodes (0 = single aggregator)")
	clusterJoin := flag.String("cluster-join", "", "with -lustre: comma-separated ctl inboxes of an existing aggregation cluster to join")
	clusterListen := flag.String("cluster-listen", "", "with -lustre: first node's publisher bind for external subscribers, e.g. tcp://0.0.0.0:7400")
	clusterPrefix := flag.String("cluster-node-prefix", "", "with -lustre: member-ID prefix for the deployed cluster nodes (default: \"n\" founding, host+pid when joining)")
	clusterAdvertise := flag.String("cluster-advertise", "", "with -lustre: externally reachable host advertised for cluster addresses bound on a wildcard host")
	demo := flag.Bool("demo", false, "with -lustre: run the Evaluate_Output_Script workload and exit")
	stats := flag.Bool("stats", false, "print layer statistics on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry at this address (/metrics, /metrics/history, /metrics/prom, /traces, /healthz, /debug/incidents, /debug/pprof)")
	status := flag.String("status", "", "fetch a running monitor's telemetry snapshot and health verdict from this address and exit")
	incidentDir := flag.String("incident-dir", "", "arm the incident flight recorder: watchdog trips capture diagnostic bundles into this directory (implies telemetry)")
	incidentRetain := flag.Int("incident-retain", 0, "with -incident-dir: keep at most N bundles, oldest pruned first (0 = default 8)")
	incident := flag.String("incident", "", "trigger an incident capture on a running monitor at this address, print the bundle JSON, and exit")
	metricsHistory := flag.Int("metrics-history", 0, "retained telemetry samples backing /metrics/history, the watchdog, and incident bundles (0 = default 256)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N events end-to-end across every tier (0 = off, 1 = every event)")
	traceOut := flag.String("trace-out", "", "with -trace-sample: write completed span traces as Chrome trace_event JSON to this file on exit")
	verbose := flag.Bool("verbose", false, "log component diagnostics (structured, to stderr)")
	var mounts mountList
	flag.Var(&mounts, "mount", "mount a backend into the namespace as /prefix=backend:root (repeatable; backend: local, object, or a DSI name)")
	listBackends := flag.Bool("list-backends", false, "print registered DSI backends with their selection scores and exit")
	flag.Parse()

	if *listBackends {
		info := fsmonitor.StorageInfo{Platform: runtime.GOOS, FSType: "local", Root: "/"}
		if *lustreBed != "" {
			info.FSType = "lustre"
		}
		if flag.NArg() == 1 {
			info.Root = flag.Arg(0)
		}
		fmt.Printf("backends for platform=%s fstype=%s:\n", info.Platform, info.FSType)
		for _, s := range fsmonitor.Registry().Scores(info) {
			marker := " "
			if s.Score > 0 {
				marker = "*"
			}
			fmt.Printf("  %s %-16s score=%d\n", marker, s.Name, s.Score)
		}
		return
	}

	if *status != "" {
		base := *status
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimSuffix(base, "/")
		base = strings.TrimSuffix(base, "/metrics")
		snap, err := fsmonitor.FetchTelemetry(base + "/metrics")
		if err != nil {
			fatal(err)
		}
		if err := fsmonitor.WriteTelemetryText(os.Stdout, snap); err != nil {
			fatal(err)
		}
		// The health verdict rides along: one -status call answers both
		// "what are the numbers" and "is it healthy".
		if rep, ok, err := fsmonitor.FetchTelemetryHealth(base + "/healthz"); err == nil {
			fmt.Printf("health: %s", rep.Status)
			if !ok {
				fmt.Print(" (endpoint reports 503)")
			}
			fmt.Println()
			for _, t := range rep.Tiers {
				if len(t.Reasons) > 0 {
					fmt.Printf("  %s: %s (%s)\n", t.Tier, t.Status, strings.Join(t.Reasons, "; "))
				}
			}
		}
		// Clustered monitors additionally serve the federated rollup: a
		// per-member health table instead of only this process's numbers.
		// Non-clustered endpoints answer 404 and the section is skipped.
		if rep, ok, err := fsmonitor.FetchClusterHealth(base + "/cluster/healthz"); err == nil {
			fmt.Printf("cluster: %s", rep.Status)
			if !ok {
				fmt.Print(" (endpoint reports 503)")
			}
			fmt.Println()
			fmt.Printf("  %-16s %-6s %-12s %-14s %s\n", "NODE", "EPOCH", "PARTITIONS", "HEARTBEAT-AGE", "VERDICT")
			for _, mb := range rep.Members {
				verdict := mb.Status.String()
				if mb.Dead {
					verdict = fmt.Sprintf("dead (silent %.0fms)", mb.SnapshotAgeMS)
				}
				fmt.Printf("  %-16s %-6d %-12d %-14s %s\n",
					mb.Node, mb.Epoch, len(mb.Partitions),
					fmt.Sprintf("%.0fms", mb.HeartbeatAgeMS), verdict)
			}
		}
		return
	}

	if *incident != "" {
		base := *incident
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimSuffix(base, "/")
		bundle, err := fsmonitor.TriggerRemoteIncident(base + "/debug/incidents/trigger")
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(bundle); err != nil {
			fatal(err)
		}
		return
	}

	var mask fsmonitor.Op
	if *ops != "" {
		m, err := events.ParseOp(strings.ToUpper(*ops))
		if err != nil {
			fatal(err)
		}
		mask = m
	}
	outFormat := fsmonitor.Format(*format)

	var common []fsmonitor.Option
	var reg *fsmonitor.Telemetry
	if *metricsAddr != "" || *stats || *traceSample > 0 || *incidentDir != "" {
		reg = fsmonitor.NewTelemetry()
		common = append(common, fsmonitor.WithTelemetry(reg))
	}
	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	if *incidentDir != "" {
		// Tee logs through the flight recorder's bounded ring before the
		// watchdog starts, so the transition warnings that precede a trip
		// land in the captured bundle (ring-only when not -verbose).
		logger = reg.EnableLogRing(0).Wrap(logger)
		common = append(common, fsmonitor.WithIncidentDir(*incidentDir))
		if *incidentRetain > 0 {
			common = append(common, fsmonitor.WithIncidentRetention(*incidentRetain))
		}
	}
	if logger != nil {
		common = append(common, fsmonitor.WithLogger(logger))
	}
	if *traceSample > 0 {
		// Tracing must be armed before the monitor is built so the trace
		// ring exists when collectors start; the effective rate itself is
		// re-read per batch (the flight recorder boosts it live during
		// incidents).
		fsmonitor.EnableTraceSampling(reg, *traceSample)
	}
	if reg != nil {
		// The self-monitoring loop: time-series sampling feeds the rate
		// views and the watchdog's per-tier health verdicts; with
		// -incident-dir, watchdog trips additionally capture bundles.
		watchdog := fsmonitor.StartTelemetryWatchdogWith(reg, fsmonitor.TelemetryHealthOptions{
			Logger:         logger,
			SamplerHistory: *metricsHistory,
		})
		defer watchdog.Close()
	}

	var (
		m       *fsmonitor.Monitor
		err     error
		cluster *fsmonitor.LustreCluster
	)
	switch {
	case len(mounts) > 0:
		opts := append([]fsmonitor.Option{}, common...)
		for _, spec := range mounts {
			opt, perr := parseMount(spec, *recursive)
			if perr != nil {
				fatal(perr)
			}
			opts = append(opts, opt)
		}
		if *backend != "" {
			fatal(fmt.Errorf("-dsi conflicts with -mount; pin per-mount backends in the mount spec"))
		}
		m, err = fsmonitor.Compose(opts...)
	case *lustreBed != "":
		var cfg lustre.Config
		switch strings.ToLower(*lustreBed) {
		case "aws":
			cfg = lustre.AWSConfig()
		case "thor":
			cfg = lustre.ThorConfig()
		case "iota":
			cfg = lustre.IotaConfig()
		default:
			fatal(fmt.Errorf("unknown testbed %q (want aws, thor, or iota)", *lustreBed))
		}
		cfg.OpLatency = nil // interactive demo runs unpaced
		cluster = fsmonitor.NewLustreCluster(cfg)
		lopts := append([]fsmonitor.Option{}, common...)
		if *partitions > 0 {
			lopts = append(lopts, fsmonitor.WithStorePartitions(*partitions))
		}
		if *clusterNodes > 0 {
			lopts = append(lopts, fsmonitor.WithClusterNodes(*clusterNodes))
		}
		if *clusterJoin != "" {
			lopts = append(lopts, fsmonitor.WithClusterJoin(strings.Split(*clusterJoin, ",")...))
		}
		if *clusterListen != "" {
			lopts = append(lopts, fsmonitor.WithClusterListen(*clusterListen))
		}
		if *clusterPrefix != "" {
			lopts = append(lopts, fsmonitor.WithClusterNodePrefix(*clusterPrefix))
		}
		if *clusterAdvertise != "" {
			lopts = append(lopts, fsmonitor.WithClusterAdvertise(*clusterAdvertise))
		}
		m, err = fsmonitor.WatchLustre(cluster, "/mnt/lustre", *cache, lopts...)
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: fsmon [flags] <path>  (or -lustre <testbed>)")
			flag.PrintDefaults()
			os.Exit(2)
		}
		opts := append([]fsmonitor.Option{}, common...)
		if *recursive {
			opts = append(opts, fsmonitor.WithRecursive())
		}
		if *backend != "" {
			opts = append(opts, fsmonitor.WithDSI(*backend))
		}
		m, err = fsmonitor.Watch(flag.Arg(0), opts...)
	}
	if err != nil {
		fatal(err)
	}
	defer m.Close()
	if mts := m.Mounts(); len(mts) > 0 {
		fmt.Fprintf(os.Stderr, "fsmon: monitoring via %s DSI (mounts: %s)\n", m.DSIName(), strings.Join(mts, " "))
	} else {
		fmt.Fprintf(os.Stderr, "fsmon: monitoring via %s DSI\n", m.DSIName())
	}
	for _, cm := range m.ClusterMembers() {
		fmt.Fprintf(os.Stderr, "fsmon: cluster member %s: events %s, join %s, recovery %s\n",
			cm.ID, cm.Endpoint, cm.Ctl, cm.Recovery)
	}
	if *metricsAddr != "" {
		srv, err := fsmonitor.ServeTelemetry(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fsmon: telemetry at http://%s/metrics (query with fsmon -status %s)\n",
			srv.Addr(), srv.Addr())
	}

	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: *recursive || *lustreBed != "" || len(mounts) > 0, Ops: mask}, 0)
	if err != nil {
		fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range sub.C() {
			for _, e := range batch {
				line, err := fsmonitor.Transform(e, outFormat)
				if err != nil {
					fmt.Fprintf(os.Stderr, "fsmon: %v\n", err)
					continue
				}
				fmt.Println(line)
			}
		}
	}()

	if *demo && cluster != nil {
		cl := cluster.Client()
		target := workload.NewLustreTarget(cl)
		if err := cl.MkdirAll("/demo"); err != nil {
			fatal(err)
		}
		if err := workload.OutputScript(target, "/demo", 20*time.Millisecond); err != nil {
			fatal(err)
		}
		time.Sleep(500 * time.Millisecond)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	sub.Close()
	<-done
	if *traceOut != "" {
		traces := fsmonitor.Traces(reg)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := fsmonitor.WriteChromeTrace(f, traces); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fsmon: wrote %d span traces to %s (load in chrome://tracing)\n",
			len(traces), *traceOut)
	}
	if *stats {
		st := m.Stats()
		fmt.Fprintf(os.Stderr, "fsmon: dsi=%s dropped=%d processed=%d batches=%d stored=%d delivered=%d\n",
			st.DSI, st.DSIDropped, st.Resolution.Processed, st.Resolution.Batches,
			st.Interface.Store.Appended, st.Interface.Delivered)
		for _, ms := range st.Mounts {
			fmt.Fprintf(os.Stderr, "fsmon: mount %s backend=%s captured=%d shadowed=%d dropped=%d errors=%d attached=%v\n",
				ms.Prefix, ms.Backend, ms.Captured, ms.Shadowed, ms.Dropped, ms.Errors, ms.Attached)
		}
		if reg != nil {
			if err := fsmonitor.WriteTelemetryText(os.Stderr, reg.Snapshot()); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsmon: %v\n", err)
	os.Exit(1)
}
