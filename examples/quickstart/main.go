// Quickstart: watch a real directory with FSMonitor's standardized events.
//
// The example creates a scratch directory, attaches a monitor (the
// registry picks the platform's native backend — raw inotify on Linux, the
// portable polling watcher elsewhere), performs a few file operations, and
// prints the standardized events they produce.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fsmonitor"
)

func main() {
	dir, err := os.MkdirTemp("", "fsmonitor-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Attach a recursive monitor to the directory.
	m, err := fsmonitor.Watch(dir, fsmonitor.WithRecursive())
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	fmt.Printf("monitoring %s via the %q DSI\n\n", dir, m.DSIName())

	// Subscribe to creations, modifications, deletions, and renames.
	sub, err := m.Subscribe(fsmonitor.Filter{
		Recursive: true,
		Ops: fsmonitor.OpCreate | fsmonitor.OpModify | fsmonitor.OpDelete |
			fsmonitor.OpMovedFrom | fsmonitor.OpMovedTo,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for batch := range sub.C() {
			for _, e := range batch {
				fmt.Println(" ", e) // e.g. "/tmp/xyz CREATE /hello.txt"
			}
		}
	}()

	// Drive some file activity: create, modify, rename, remove. The
	// brief pauses mimic a human-speed session and give the recursive
	// watcher time to cover newly created directories (the inotify
	// recursion race the package documentation describes).
	settle := func() { time.Sleep(50 * time.Millisecond) }
	hello := filepath.Join(dir, "hello.txt")
	if err := os.WriteFile(hello, []byte("hello"), 0o644); err != nil {
		log.Fatal(err)
	}
	settle()
	if err := os.WriteFile(hello, []byte("hello, world"), 0o644); err != nil {
		log.Fatal(err)
	}
	settle()
	hi := filepath.Join(dir, "hi.txt")
	if err := os.Rename(hello, hi); err != nil {
		log.Fatal(err)
	}
	settle()
	if err := os.Mkdir(filepath.Join(dir, "okdir"), 0o755); err != nil {
		log.Fatal(err)
	}
	settle()
	if err := os.Rename(hi, filepath.Join(dir, "okdir", "hi.txt")); err != nil {
		log.Fatal(err)
	}
	settle()
	if err := os.RemoveAll(filepath.Join(dir, "okdir")); err != nil {
		log.Fatal(err)
	}

	// Let the pipeline drain, then show what the reliable store holds.
	time.Sleep(500 * time.Millisecond)
	stored, err := m.Since(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreliable event store holds %d events; the same stream is\n", len(stored))
	fmt.Println("available in other representations:")
	var sample *fsmonitor.Event
	for i := range stored {
		if stored[i].Op.HasAny(fsmonitor.OpCreate) {
			sample = &stored[i]
			break
		}
	}
	if sample != nil {
		for _, f := range []fsmonitor.Format{fsmonitor.FormatInotify, fsmonitor.FormatKqueue, fsmonitor.FormatFSEvents, fsmonitor.FormatFSW} {
			line, err := fsmonitor.Transform(*sample, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s %s\n", f, line)
		}
	}
}
