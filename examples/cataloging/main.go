// Responsive cataloging (paper §VI-B): maintain a searchable metadata
// catalog of a large store from events rather than by crawling, in the
// style of Skluma + Globus Search.
//
// "As storage systems grow to manage hundreds of petabytes ... the cost to
// crawl and index the data is likely to become increasingly prohibitive."
// This example attaches an extractor pipeline to FSMonitor: new files are
// type-inferred and passed through per-type metadata extractors; renames
// move catalog entries; deletions retract them — the index stays current
// without a single crawl.
package main

import (
	"fmt"
	"log"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"fsmonitor"
)

// Record is one catalog entry.
type Record struct {
	Path     string
	Type     string
	Size     int64
	Keywords []string
	Indexed  time.Time
}

// Extractor derives metadata for one inferred file type (the Skluma
// analogue: "a suite of metadata extraction tools that can be applied to
// data").
type Extractor func(cluster *fsmonitor.LustreCluster, p string) []string

// Catalog is the searchable index (the Globus Search analogue).
type Catalog struct {
	mu      sync.Mutex
	byPath  map[string]*Record
	keyword map[string]map[string]bool // keyword -> set of paths
}

func NewCatalog() *Catalog {
	return &Catalog{byPath: map[string]*Record{}, keyword: map[string]map[string]bool{}}
}

func (c *Catalog) Put(r *Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(r.Path)
	c.byPath[r.Path] = r
	for _, k := range r.Keywords {
		if c.keyword[k] == nil {
			c.keyword[k] = map[string]bool{}
		}
		c.keyword[k][r.Path] = true
	}
}

func (c *Catalog) Move(oldPath, newPath string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.byPath[oldPath]
	if !ok {
		return
	}
	c.removeLocked(oldPath)
	r.Path = newPath
	c.byPath[newPath] = r
	for _, k := range r.Keywords {
		if c.keyword[k] == nil {
			c.keyword[k] = map[string]bool{}
		}
		c.keyword[k][newPath] = true
	}
}

func (c *Catalog) Remove(p string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(p)
}

func (c *Catalog) removeLocked(p string) {
	r, ok := c.byPath[p]
	if !ok {
		return
	}
	delete(c.byPath, p)
	for _, k := range r.Keywords {
		delete(c.keyword[k], p)
		if len(c.keyword[k]) == 0 {
			delete(c.keyword, k)
		}
	}
}

// Search returns the paths matching a keyword, sorted.
func (c *Catalog) Search(keyword string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for p := range c.keyword[keyword] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byPath)
}

// inferType is the pipeline's type inference step.
func inferType(p string) string {
	switch strings.TrimPrefix(path.Ext(p), ".") {
	case "csv", "tsv":
		return "tabular"
	case "txt", "md", "log":
		return "freetext"
	case "png", "jpg", "svg":
		return "image"
	case "h5", "nc":
		return "scientific"
	default:
		return "unknown"
	}
}

func main() {
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 2, NumOSS: 4, OSTsPerOSS: 2, OSTSizeGB: 100})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	extractors := map[string]Extractor{
		"tabular": func(cl *fsmonitor.LustreCluster, p string) []string {
			return []string{"tabular", "columns", path.Base(path.Dir(p))}
		},
		"freetext": func(cl *fsmonitor.LustreCluster, p string) []string {
			return []string{"text", "keywords", path.Base(path.Dir(p))}
		},
		"image": func(cl *fsmonitor.LustreCluster, p string) []string {
			return []string{"image", "plot", path.Base(path.Dir(p))}
		},
		"scientific": func(cl *fsmonitor.LustreCluster, p string) []string {
			return []string{"hdf5", "dataset", path.Base(path.Dir(p))}
		},
	}
	catalog := NewCatalog()

	sub, err := m.Subscribe(fsmonitor.Filter{
		Recursive: true,
		Ops: fsmonitor.OpClose | fsmonitor.OpDelete | fsmonitor.OpMovedFrom |
			fsmonitor.OpMovedTo,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range sub.C() {
			for _, e := range batch {
				switch {
				case e.Op.HasAny(fsmonitor.OpMovedTo):
					if e.OldPath != "" {
						catalog.Move(e.OldPath, e.Path)
					}
				case e.Op.HasAny(fsmonitor.OpDelete):
					catalog.Remove(e.Path)
				case e.Op.HasAny(fsmonitor.OpClose) && !e.IsDir():
					ty := inferType(e.Path)
					rec := &Record{Path: e.Path, Type: ty, Indexed: time.Now()}
					if info, err := cluster.Stat(e.Path); err == nil {
						rec.Size = info.Size
					}
					if ex, ok := extractors[ty]; ok {
						rec.Keywords = ex(cluster, e.Path)
					} else {
						rec.Keywords = []string{"unknown"}
					}
					catalog.Put(rec)
				}
			}
		}
	}()

	// Users populate the store.
	cl := cluster.Client()
	must(cl.MkdirAll("/proj/climate"))
	must(cl.MkdirAll("/proj/genomics"))
	files := []struct {
		path string
		size int64
	}{
		{"/proj/climate/temps.csv", 4096},
		{"/proj/climate/readme.txt", 512},
		{"/proj/climate/model.h5", 1 << 20},
		{"/proj/genomics/samples.csv", 8192},
		{"/proj/genomics/plot.png", 2048},
		{"/proj/genomics/notes.md", 256},
	}
	for _, f := range files {
		must(cl.Create(f.path))
		must(cl.WriteData(f.path, f.size))
		must(cl.Write(f.path, 1))
		must(cl.CloseFile(f.path))
	}
	time.Sleep(300 * time.Millisecond)

	fmt.Printf("catalog holds %d records without any crawl\n", catalog.Len())
	fmt.Printf("search 'tabular':  %v\n", catalog.Search("tabular"))
	fmt.Printf("search 'climate':  %v\n", catalog.Search("climate"))

	// Data moves and deletions keep the index current.
	must(cl.MkdirAll("/archive"))
	must(cl.Rename("/proj/climate/temps.csv", "/archive/temps-2026.csv"))
	must(cl.Unlink("/proj/genomics/plot.png"))
	time.Sleep(300 * time.Millisecond)

	fmt.Printf("\nafter a move and a delete (%d records):\n", catalog.Len())
	fmt.Printf("search 'tabular':  %v\n", catalog.Search("tabular"))
	fmt.Printf("search 'image':    %v\n", catalog.Search("image"))

	sub.Close()
	<-done
	if catalog.Len() != 5 {
		log.Fatalf("expected 5 records, got %d", catalog.Len())
	}
	got := catalog.Search("tabular")
	if len(got) != 2 || got[0] != "/archive/temps-2026.csv" {
		log.Fatalf("move not reflected in index: %v", got)
	}
	if len(catalog.Search("image")) != 0 {
		log.Fatal("deleted file still indexed")
	}
	fmt.Println("\ncataloging example completed successfully")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
