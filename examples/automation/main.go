// Research automation (paper §VI-A): use FSMonitor to trigger data-
// management flows in response to file-system events, in the style of
// Globus Automate / Ripple.
//
// A flow is a pipeline of named steps (validate → extract → catalog →
// replicate). The automation client subscribes to FSMonitor, builds a
// metadata document for each matching event ("our client constructs a
// JSON document of metadata, such as the file type, size, owner, and
// location and transmits the data to a pre-defined flow"), and executes
// the flow reliably, retrying failed steps.
//
// The storage here is a simulated Lustre cluster monitored through the
// scalable DSI — the scenario the paper motivates: instrument data lands
// on a parallel file system and must be processed the moment it appears.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"os"
	"path"
	"strings"
	"sync"
	"time"

	"fsmonitor"
)

// FlowStep is one action in a flow.
type FlowStep struct {
	Name string
	Run  func(doc map[string]any) error
}

// Flow is a reliably-executed pipeline of steps.
type Flow struct {
	Name    string
	Steps   []FlowStep
	Retries int
}

// Execute runs every step with retry, returning the first persistent
// failure.
func (f *Flow) Execute(doc map[string]any) error {
	for _, step := range f.Steps {
		var err error
		for attempt := 0; attempt <= f.Retries; attempt++ {
			if err = step.Run(doc); err == nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("flow %s step %s: %w", f.Name, step.Name, err)
		}
	}
	return nil
}

// Trigger binds an event filter to a flow.
type Trigger struct {
	Filter fsmonitor.Filter
	Match  func(e fsmonitor.Event) bool
	Flow   *Flow
}

func main() {
	// Operational logging: component-tagged structured records from the
	// monitor and the automation client share one slog handler.
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// The experiment facility's parallel store: a 4-MDS Lustre system.
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 4, NumOSS: 4, OSTsPerOSS: 4, OSTSizeGB: 100})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0, fsmonitor.WithLogger(logger))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	var mu sync.Mutex
	catalog := map[string]map[string]any{}
	replicas := map[string]bool{}
	var flowRuns int

	ingestFlow := &Flow{
		Name:    "ingest-scan",
		Retries: 2,
		Steps: []FlowStep{
			{Name: "validate", Run: func(doc map[string]any) error {
				if doc["size"].(int64) <= 0 {
					return fmt.Errorf("empty scan %v", doc["path"])
				}
				return nil
			}},
			{Name: "extract", Run: func(doc map[string]any) error {
				doc["dataset"] = path.Base(path.Dir(doc["path"].(string)))
				return nil
			}},
			{Name: "catalog", Run: func(doc map[string]any) error {
				mu.Lock()
				defer mu.Unlock()
				catalog[doc["path"].(string)] = doc
				return nil
			}},
			{Name: "replicate", Run: func(doc map[string]any) error {
				mu.Lock()
				defer mu.Unlock()
				replicas[doc["path"].(string)] = true
				return nil
			}},
		},
	}
	cleanupFlow := &Flow{
		Name: "retract",
		Steps: []FlowStep{
			{Name: "decatalog", Run: func(doc map[string]any) error {
				mu.Lock()
				defer mu.Unlock()
				delete(catalog, doc["path"].(string))
				delete(replicas, doc["path"].(string))
				return nil
			}},
		},
	}
	triggers := []Trigger{
		{
			Filter: fsmonitor.Filter{Ops: fsmonitor.OpClose, Under: "/instrument", Recursive: true},
			Match:  func(e fsmonitor.Event) bool { return strings.HasSuffix(e.Path, ".h5") },
			Flow:   ingestFlow,
		},
		{
			Filter: fsmonitor.Filter{Ops: fsmonitor.OpDelete, Under: "/instrument", Recursive: true},
			Match:  func(e fsmonitor.Event) bool { return strings.HasSuffix(e.Path, ".h5") },
			Flow:   cleanupFlow,
		},
	}

	// One subscription per trigger: each consumer filters client-side.
	var wg sync.WaitGroup
	for _, tr := range triggers {
		sub, err := m.Subscribe(tr.Filter, 0)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(tr Trigger, sub *fsmonitor.Subscription) {
			defer wg.Done()
			for batch := range sub.C() {
				for _, e := range batch {
					if tr.Match != nil && !tr.Match(e) {
						continue
					}
					doc := buildDocument(cluster, e)
					if err := tr.Flow.Execute(doc); err != nil {
						logger.Error("flow failed", "component", "automation", "flow", tr.Flow.Name, "err", err)
						continue
					}
					mu.Lock()
					flowRuns++
					mu.Unlock()
					js, _ := json.Marshal(doc)
					fmt.Printf("flow %-12s <- %s\n", tr.Flow.Name, js)
				}
			}
		}(tr, sub)
	}

	// The instrument writes scan files; an unrelated user works elsewhere
	// (those events must not trigger flows).
	cl := cluster.Client()
	must(cl.MkdirAll("/instrument/run42"))
	must(cl.MkdirAll("/home/user"))
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/instrument/run42/scan%03d.h5", i)
		must(cl.Create(p))
		must(cl.WriteData(p, int64(1024*(i+1))))
		must(cl.Write(p, 64)) // metadata-visible append
		must(cl.CloseFile(p))
		time.Sleep(20 * time.Millisecond) // instrument inter-scan gap
	}
	must(cl.Create("/instrument/run42/notes.txt")) // wrong suffix: ignored
	must(cl.CloseFile("/instrument/run42/notes.txt"))
	must(cl.Create("/home/user/draft.h5")) // outside /instrument: ignored
	must(cl.CloseFile("/home/user/draft.h5"))
	time.Sleep(200 * time.Millisecond)              // let the ingest flows finish
	must(cl.Unlink("/instrument/run42/scan000.h5")) // retract one scan

	time.Sleep(700 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\n%d flow executions; catalog holds %d datasets, %d replicated\n",
		flowRuns, len(catalog), len(replicas))
	if flowRuns != 6 || len(catalog) != 4 || len(replicas) != 4 {
		log.Fatalf("expected 6 flow runs and 4 catalogued scans after one retraction, got %d runs, %d/%d", flowRuns, len(catalog), len(replicas))
	}
	fmt.Println("automation example completed successfully")
}

// buildDocument assembles the metadata JSON document for a data event.
func buildDocument(cluster *fsmonitor.LustreCluster, e fsmonitor.Event) map[string]any {
	doc := map[string]any{
		"path":     e.Path,
		"location": e.FullPath(),
		"event":    e.Op.String(),
		"time":     e.Time.UTC().Format(time.RFC3339Nano),
		"size":     int64(0),
		"type":     strings.TrimPrefix(path.Ext(e.Path), "."),
	}
	if info, err := cluster.Stat(e.Path); err == nil {
		doc["size"] = info.Size
		doc["mdt"] = info.MDT
	}
	return doc
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
