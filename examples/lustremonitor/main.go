// Full scalable-monitor deployment (paper §IV, Fig. 4): a four-MDS Lustre
// cluster monitored by one collector per MDS, an aggregator, and two
// consumers — including a consumer crash and fault recovery from the
// reliable event store. This example uses the scalable monitor's own API
// (package internals re-exported through the module) rather than the
// simplified fsmonitor.WatchLustre wrapper, showing every component the
// paper describes.
package main

import (
	"fmt"
	"log"
	"time"

	"fsmonitor/internal/iface"
	"fsmonitor/internal/lustre"
	"fsmonitor/internal/scalable"
	"fsmonitor/internal/workload"
)

func main() {
	// An Iota-like cluster: 4 MDSs with DNE, run unpaced for the demo.
	cfg := lustre.IotaConfig()
	cfg.OpLatency = nil
	cluster := lustre.NewCluster(cfg)
	fmt.Printf("cluster %s: %d MDSs, %.0f TB\n", cfg.Name, cluster.NumMDS(),
		float64(cluster.TotalCapacity())/(1<<40))

	mon, err := scalable.Deploy(cluster, scalable.DeployOptions{
		MountPoint: "/mnt/lustre",
		CacheSize:  5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	fmt.Printf("deployed %d collectors + aggregator at %s\n\n",
		len(mon.Collectors), mon.Aggregator.Endpoint())

	// Consumer A wants everything; consumer B only deletions under /data.
	all, err := mon.NewConsumer(iface.Filter{Recursive: true}, 0)
	if err != nil {
		log.Fatal(err)
	}
	deletes, err := mon.NewConsumer(iface.Filter{Recursive: true, Under: "/data"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	countA, countB := 0, 0
	doneA, doneB := make(chan struct{}), make(chan struct{})
	go func() {
		defer close(doneA)
		for b := range all.C() {
			countA += len(b)
		}
	}()
	go func() {
		defer close(doneB)
		for b := range deletes.C() {
			countB += len(b)
		}
	}()

	// Drive a workload that spreads directories across all four MDSs.
	cl := cluster.Client()
	target := workload.NewLustreTarget(cl)
	if err := cl.MkdirAll("/data"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d := fmt.Sprintf("/data/job%03d", i)
		if err := cl.Mkdir(d); err != nil {
			log.Fatal(err)
		}
		f := d + "/out.dat"
		if err := cl.Create(f); err != nil {
			log.Fatal(err)
		}
		if err := cl.Write(f, 4096); err != nil {
			log.Fatal(err)
		}
	}
	if err := workload.RunHACC(target, workload.HACCOptions{Processes: 64, Particles: 6400}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)

	st := mon.Stats()
	fmt.Println("per-MDS collectors:")
	for _, cs := range st.Collectors {
		fmt.Printf("  MDT%d: %d records read, %d events published, fid2path calls %d (cache hit rate %.0f%%)\n",
			cs.MDT, cs.RecordsRead, cs.EventsPublished, cs.Fid2PathCalls, cs.Cache.HitRate()*100)
	}
	fmt.Printf("aggregator: %d received, %d stored, %d published\n",
		st.Aggregator.Received, st.Aggregator.Stored, st.Aggregator.Published)
	fmt.Printf("consumer A saw %d events; consumer B (under /data) saw %d\n\n", countA, countB)

	// Fault tolerance: consumer A crashes, more events occur, and a
	// restarted consumer recovers them from the reliable store by
	// presenting its last sequence number (§III-A3, §IV-2).
	resume := all.LastSeq()
	all.Close()
	<-doneA
	fmt.Printf("consumer A crashed at seq %d\n", resume)
	for i := 0; i < 50; i++ {
		if err := cl.Create(fmt.Sprintf("/data/late%03d.dat", i)); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	revived, err := mon.NewConsumer(iface.Filter{Recursive: true}, resume)
	if err != nil {
		log.Fatal(err)
	}
	recovered := 0
	deadline := time.After(2 * time.Second)
recover:
	for {
		select {
		case b := <-revived.C():
			recovered += len(b)
			if recovered >= 50 {
				break recover
			}
		case <-deadline:
			break recover
		}
	}
	fmt.Printf("restarted consumer recovered %d missed events from the store\n", recovered)
	revived.Close()
	deletes.Close()
	<-doneB

	if recovered < 50 {
		log.Fatalf("fault recovery incomplete: %d/50", recovered)
	}
	if countB == 0 || countB >= countA {
		log.Fatalf("client-side filtering wrong: A=%d B=%d", countA, countB)
	}
	fmt.Println("\nlustre monitor example completed successfully")
}
