package fsmonitor_test

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsmonitor"
	"fsmonitor/internal/lustre"
)

func recvAll(t *testing.T, sub *fsmonitor.Subscription, want int, timeout time.Duration) []fsmonitor.Event {
	t.Helper()
	var out []fsmonitor.Event
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case b, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, b...)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestWatchRealDirectory(t *testing.T) {
	dir := t.TempDir()
	m, err := fsmonitor.Watch(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Ops: fsmonitor.OpCreate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, sub, 1, 2*time.Second)
	if len(got) == 0 || got[0].Path != "/f.txt" {
		t.Fatalf("events = %v", got)
	}
}

func TestWatchSimPlatforms(t *testing.T) {
	for _, platform := range []string{"sim-linux", "sim-darwin", "sim-bsd", "sim-windows"} {
		t.Run(platform, func(t *testing.T) {
			fs := fsmonitor.NewSimFS()
			if err := fs.Mkdir("/data"); err != nil {
				t.Fatal(err)
			}
			m, err := fsmonitor.WatchSim(fs, platform, "/data", fsmonitor.WithRecursive())
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			sub, err := m.Subscribe(fsmonitor.Filter{Ops: fsmonitor.OpCreate, Recursive: true}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile("/data/x", 1); err != nil {
				t.Fatal(err)
			}
			got := recvAll(t, sub, 1, 2*time.Second)
			if len(got) == 0 {
				t.Fatal("no events")
			}
			// Same standardized representation on every platform
			// (§V-C1: "FSMonitor gives the same event definitions").
			if got[0].String() != "/data CREATE /x" {
				t.Errorf("%s: %q", platform, got[0])
			}
		})
	}
}

func TestWatchLustreEndToEnd(t *testing.T) {
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 4})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.DSIName() != "lustre" {
		t.Errorf("DSI = %q", m.DSIName())
	}
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.Client()
	const n = 32
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("/d%d", i)
		if err := cl.Mkdir(d); err != nil {
			t.Fatal(err)
		}
		if err := cl.Create(d + "/f"); err != nil {
			t.Fatal(err)
		}
	}
	got := recvAll(t, sub, 2*n, 5*time.Second)
	if len(got) != 2*n {
		t.Fatalf("events = %d, want %d", len(got), 2*n)
	}
	for _, e := range got {
		if e.Root != "/mnt/lustre" {
			t.Errorf("root = %q", e.Root)
		}
	}
}

func TestWatchLustreNoCache(t *testing.T) {
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 1})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", -1) // cache disabled
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.Client()
	if err := cl.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, sub, 1, 2*time.Second); len(got) != 1 {
		t.Fatalf("events = %v", got)
	}
}

func TestTransformFormats(t *testing.T) {
	e := fsmonitor.Event{Root: "/r", Op: fsmonitor.OpCreate, Path: "/f"}
	for _, f := range []fsmonitor.Format{
		fsmonitor.FormatStandard, fsmonitor.FormatInotify, fsmonitor.FormatKqueue,
		fsmonitor.FormatFSEvents, fsmonitor.FormatFSW, fsmonitor.FormatLustre,
	} {
		s, err := fsmonitor.Transform(e, f)
		if err != nil || s == "" {
			t.Errorf("Transform(%s) = %q, %v", f, s, err)
		}
	}
}

func TestEventsSinceAcrossRestartViaJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "events.jsonl")
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	m, err := fsmonitor.WatchSim(fs, "sim-linux", "/d", fsmonitor.WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if evs, _ := m.Since(0, 0); len(evs) >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.Close()
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal not written: %v", err)
	}
}

func TestStatsSurface(t *testing.T) {
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	m, err := fsmonitor.WatchSim(fs, "sim-linux", "/d")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := fs.WriteFile("/d/f", 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Stats(); st.Resolution.Processed >= 3 && st.Interface.Store.Appended >= 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stats = %+v", m.Stats())
}

func TestTestbedPresetsExposed(t *testing.T) {
	for _, cfg := range lustre.Testbeds() {
		c := fsmonitor.NewLustreCluster(cfg)
		if c.NumMDS() < 1 {
			t.Errorf("%s: no MDS", cfg.Name)
		}
	}
}

// The paper's central claim: the same script produces the same
// standardized event definitions whether the storage is a local
// filesystem or a distributed Lustre store ("works seamlessly for both
// local and distributed file systems", §VII).
func TestUniformEventsLocalVsLustre(t *testing.T) {
	runScript := func(m *fsmonitor.Monitor, create func(string) error, write func(string) error,
		rename func(string, string) error, unlink func(string) error) []string {
		t.Helper()
		sub, err := m.Subscribe(fsmonitor.Filter{
			Recursive: true,
			Ops: fsmonitor.OpCreate | fsmonitor.OpModify | fsmonitor.OpDelete |
				fsmonitor.OpMovedFrom | fsmonitor.OpMovedTo,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		step := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(30 * time.Millisecond)
		}
		step(create("/w/hello.txt"))
		step(write("/w/hello.txt"))
		step(rename("/w/hello.txt", "/w/hi.txt"))
		step(unlink("/w/hi.txt"))
		var lines []string
		deadline := time.After(2 * time.Second)
		for len(lines) < 5 {
			select {
			case b := <-sub.C():
				for _, e := range b {
					if e.IsDir() {
						continue // setup mkdirs differ between the two runs
					}
					// Strip the root so local and Lustre renderings compare.
					lines = append(lines, e.Op.String()+" "+e.Path)
				}
			case <-deadline:
				return lines
			}
		}
		return lines
	}

	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/w"); err != nil {
		t.Fatal(err)
	}
	lm, err := fsmonitor.WatchSim(fs, "sim-linux", "/", fsmonitor.WithRecursive())
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	local := runScript(lm,
		func(p string) error {
			h, err := fs.Create(p)
			if err != nil {
				return err
			}
			return h.Close()
		},
		func(p string) error {
			h, err := fs.Open(p, true)
			if err != nil {
				return err
			}
			if err := h.Write(1); err != nil {
				return err
			}
			return h.Close()
		},
		fs.Rename, fs.Remove)

	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 2})
	dm, err := fsmonitor.WatchLustre(cluster, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	cl := cluster.Client()
	if err := cl.Mkdir("/w"); err != nil {
		t.Fatal(err)
	}
	distributed := runScript(dm,
		cl.Create,
		func(p string) error { return cl.Write(p, 1) },
		cl.Rename, cl.Unlink)

	want := []string{
		"CREATE /w/hello.txt",
		"MODIFY /w/hello.txt",
		"MOVED_FROM /w/hello.txt",
		"MOVED_TO /w/hi.txt",
		"DELETE /w/hi.txt",
	}
	check := func(name string, got []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: lines = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s line %d = %q, want %q", name, i, got[i], want[i])
			}
		}
	}
	check("local", local)
	check("lustre", distributed)
}

func TestWatchSpectrumEndToEnd(t *testing.T) {
	cluster, err := fsmonitor.NewSpectrumCluster(fsmonitor.SpectrumConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m, err := fsmonitor.WatchSpectrum(cluster, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.DSIName() != "spectrum" {
		t.Errorf("DSI = %q", m.DSIName())
	}
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true, Ops: fsmonitor.OpCreate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Create("/audited.txt"); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, sub, 1, 2*time.Second)
	if len(got) == 0 || got[0].Path != "/audited.txt" {
		t.Fatalf("events = %v", got)
	}
	if got[0].Root != "/gpfs/gpfs0" {
		t.Errorf("root = %q", got[0].Root)
	}
}

func TestOptionsExercised(t *testing.T) {
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// WithPlatform + WithDSI + WithStoreBound + WithBatch together.
	m, err := fsmonitor.WatchSim(fs, "sim-linux", "/d",
		fsmonitor.WithDSI("sim-fsevents"), // explicit pin overrides platform selection
		fsmonitor.WithPlatform("ignored-when-pinned"),
		fsmonitor.WithStoreBound(5),
		fsmonitor.WithBatch(4),
		fsmonitor.WithRecursive(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.DSIName() != "sim-fsevents" {
		t.Errorf("DSI = %q", m.DSIName())
	}
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/d/f%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Stats(); st.Interface.Store.Appended >= 10 {
			// The bounded store never holds more than 5 events.
			evs, err := m.Since(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) > 5 {
				t.Errorf("store holds %d events, bound 5", len(evs))
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("events never stored")
}

func TestRegistryExposed(t *testing.T) {
	reg := fsmonitor.Registry()
	names := reg.Names()
	want := map[string]bool{"inotify": false, "poll": false, "sim-inotify": false, "lustre": false, "spectrum": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing %q: %v", n, names)
		}
	}
}

// TestTelemetryPublicAPI drives the WithTelemetry/WithLogger/ServeTelemetry
// surface end to end: a Lustre monitor mirrors every tier into one
// registry, the registry serves over HTTP, and the fetched snapshot
// renders as text — the fsmon -metrics-addr / -status path.
func TestTelemetryPublicAPI(t *testing.T) {
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	reg := fsmonitor.NewTelemetry()
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 2})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0,
		fsmonitor.WithTelemetry(reg), fsmonitor.WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.Client()
	for i := 0; i < 8; i++ {
		if err := cl.Create(fmt.Sprintf("/t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvAll(t, sub, 8, 5*time.Second); len(got) != 8 {
		t.Fatalf("events = %d, want 8", len(got))
	}

	snap := reg.Snapshot()
	// One registry spans the deployment tiers and the local layers.
	for _, name := range []string{
		"fsmon.collector.mdt0.events_published",
		"fsmon.aggregator.stored",
		"fsmon.store.p0.appended",
		"fsmon.consumer.delivered",
		"fsmon.core.store.appended",
		"fsmon.core.iface.delivered",
		"fsmon.process.heap_bytes",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if v, _ := snap["fsmon.core.iface.delivered"].(float64); v < 8 {
		t.Errorf("core.iface.delivered = %v, want >= 8", snap["fsmon.core.iface.delivered"])
	}

	// Structured component logs flowed to the supplied logger.
	if !strings.Contains(logBuf.String(), "component=") {
		t.Errorf("logger saw no component-tagged records:\n%s", logBuf.String())
	}

	// Serve → fetch → text-render round trip.
	srv, err := fsmonitor.ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fetched, err := fsmonitor.FetchTelemetry("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fsmonitor.WriteTelemetryText(&sb, fetched); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fsmon.consumer.e2e_us count=") {
		t.Errorf("status dump missing e2e latency line:\n%s", sb.String())
	}
}

// TestWatchLustreClustered: WithClusterNodes swaps the single aggregator
// for a routed node cluster behind the same public API — same events, same
// standardized representation, no consumer-visible difference.
func TestWatchLustreClustered(t *testing.T) {
	cluster := fsmonitor.NewLustreCluster(fsmonitor.LustreConfig{NumMDS: 4})
	m, err := fsmonitor.WatchLustre(cluster, "/mnt/lustre", 0,
		fsmonitor.WithClusterNodes(2), fsmonitor.WithStorePartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.Client()
	const n = 32
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("/cd%d", i)
		if err := cl.Mkdir(d); err != nil {
			t.Fatal(err)
		}
		if err := cl.Create(d + "/f"); err != nil {
			t.Fatal(err)
		}
	}
	got := recvAll(t, sub, 2*n, 10*time.Second)
	if len(got) != 2*n {
		t.Fatalf("events = %d, want %d", len(got), 2*n)
	}
	seen := map[string]bool{}
	for _, e := range got {
		if e.Root != "/mnt/lustre" {
			t.Errorf("root = %q", e.Root)
		}
		key := e.String()
		if seen[key] {
			t.Errorf("duplicate event %q", key)
		}
		seen[key] = true
	}
}
