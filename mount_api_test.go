package fsmonitor_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"fsmonitor"
)

// TestComposePublicAPI builds a composed monitor through the public
// surface only: a simulated local tree and an object bucket behind one
// subscription.
func TestComposePublicAPI(t *testing.T) {
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	bucket := fsmonitor.NewObjectBucket()
	m, err := fsmonitor.Compose(
		fsmonitor.WithMount("/local",
			fsmonitor.StorageInfo{Platform: "sim-linux", FSType: "local", Root: "/data"},
			fsmonitor.MountBackend(fs), fsmonitor.MountRecursive()),
		fsmonitor.WithMount("/obj",
			fsmonitor.StorageInfo{FSType: "object", Root: "/"},
			fsmonitor.MountBackend(bucket)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sub, err := m.Subscribe(fsmonitor.Filter{Recursive: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/report.txt", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := bucket.Put("backups/snap.tar", 1024); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"/local/report.txt": false, "/obj/backups/snap.tar": false}
	deadline := time.After(5 * time.Second)
	for left := len(want); left > 0; {
		select {
		case batch := <-sub.C():
			for _, e := range batch {
				if seen, tracked := want[e.Path]; tracked && !seen && e.Op.Has(fsmonitor.OpCreate) {
					want[e.Path] = true
					left--
				}
			}
		case <-deadline:
			t.Fatalf("missing: %v", want)
		}
	}

	st := m.Stats()
	if len(st.Mounts) != 2 {
		t.Fatalf("Stats.Mounts = %+v", st.Mounts)
	}
	for _, ms := range st.Mounts {
		if ms.Captured == 0 || !ms.Attached {
			t.Errorf("mount %s = %+v", ms.Prefix, ms)
		}
	}

	if err := m.DetachMount("/obj"); err != nil {
		t.Fatal(err)
	}
	if got := m.Mounts(); len(got) != 1 || got[0] != "/local" {
		t.Errorf("Mounts after detach = %v", got)
	}
}

// TestSingleBackendRejectsMountOps pins ErrNotComposed through the public
// surface.
func TestSingleBackendRejectsMountOps(t *testing.T) {
	fs := fsmonitor.NewSimFS()
	if err := fs.Mkdir("/w"); err != nil {
		t.Fatal(err)
	}
	m, err := fsmonitor.WatchSim(fs, "sim-linux", "/w")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.AttachMount(fsmonitor.MountSpec{Prefix: "/x"})
	if !errors.Is(err, fsmonitor.ErrNotComposed) {
		t.Errorf("AttachMount = %v", err)
	}
}

// TestRegistryScores checks the public score listing includes the object
// backend and that selection errors name every candidate.
func TestRegistryScores(t *testing.T) {
	reg := fsmonitor.Registry()
	scores := reg.Scores(fsmonitor.StorageInfo{FSType: "object"})
	found := false
	for _, s := range scores {
		if s.Name == "objectstore" && s.Score == 100 {
			found = true
		}
	}
	if !found {
		t.Errorf("scores = %v", scores)
	}
	_, err := reg.Select(fsmonitor.StorageInfo{Platform: "vms", FSType: "ods-5"})
	if err == nil || !strings.Contains(err.Error(), "objectstore=0") {
		t.Errorf("Select error = %v", err)
	}
}
